//! Pipeline-level parallelism determinism: runs at every thread count
//! must be bit-identical — colors, round totals, recovery stats, and the
//! full telemetry event stream (wall-clock normalized away, everything
//! else exact). These tests pin the merge contract of `core::pool`: the
//! leftover-component pool and the loophole brute-force pool both solve
//! against snapshots and merge in unit-index order, so the thread count
//! can only change wall-clock, never any observable output.

use std::sync::Arc;

use delta_core::{
    color_deterministic_probed, color_randomized_probed, color_randomized_with_faults, Config,
    RandConfig, RandReport, Report,
};
use graphgen::coloring::verify_delta_coloring;
use graphgen::generators::{self, BlueprintKind, HardCliqueParams};
use graphgen::Graph;
use localsim::{Event, FaultPlan, MetricsHub, Probe, RecordingSink};

fn circulant(cliques: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques,
            delta: 16,
            external_per_vertex: 1,
            seed,
        },
        BlueprintKind::Circulant,
    )
    .unwrap()
}

/// `defer_radius = 5` leaves real leftover components on these circulant
/// instances (the default radius swallows them whole), so the component
/// pool actually has independent units to schedule.
fn shattering_config(seed: u64, threads: usize) -> RandConfig {
    let mut config = RandConfig::for_delta(16, seed);
    config.defer_radius = 5;
    config.base.threads = threads;
    config
}

/// Normalized (wall-clock-free) event stream of a recorded run.
fn normalize(events: &[Event]) -> Vec<Event> {
    events.iter().map(Event::normalized).collect()
}

fn run_randomized(
    g: &Graph,
    config: &RandConfig,
    faults: Option<&FaultPlan>,
) -> (RandReport, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let probe = Probe::new(sink.clone());
    let report = match faults {
        Some(plan) => color_randomized_with_faults(g, config, plan, &probe).unwrap(),
        None => color_randomized_probed(g, config, &probe).unwrap(),
    };
    (report, sink.events())
}

fn assert_rand_identical(reference: &(RandReport, Vec<Event>), other: &(RandReport, Vec<Event>)) {
    assert_eq!(
        reference.0.coloring, other.0.coloring,
        "colors differ across thread counts"
    );
    assert_eq!(
        reference.0.rounds(),
        other.0.rounds(),
        "round totals differ across thread counts"
    );
    assert_eq!(
        reference.0.recovery, other.0.recovery,
        "recovery stats differ across thread counts"
    );
    assert_eq!(
        reference.0.shatter.components, other.0.shatter.components,
        "component counts differ across thread counts"
    );
    assert_eq!(
        normalize(&reference.1),
        normalize(&other.1),
        "telemetry event streams differ across thread counts"
    );
}

#[test]
fn randomized_pipeline_is_bit_identical_across_thread_counts() {
    let inst = circulant(80, 500);
    for seed in [1, 9] {
        let reference = run_randomized(&inst.graph, &shattering_config(seed, 1), None);
        assert!(
            reference.0.shatter.components > 1,
            "seed {seed}: instance must leave multiple components for the pool"
        );
        verify_delta_coloring(&inst.graph, &reference.0.coloring).unwrap();
        for threads in [2, 4] {
            let par = run_randomized(&inst.graph, &shattering_config(seed, threads), None);
            assert_rand_identical(&reference, &par);
        }
    }
}

#[test]
fn faulted_pipeline_is_bit_identical_across_thread_counts() {
    let inst = circulant(80, 501);
    let plan = FaultPlan {
        seed: 0xFA17,
        message_drop_p: 0.01,
        ..FaultPlan::default()
    };
    let reference = run_randomized(&inst.graph, &shattering_config(5, 1), Some(&plan));
    assert!(
        reference.0.recovery.retries > 0,
        "plan must actually trigger retries for the test to mean anything"
    );
    verify_delta_coloring(&inst.graph, &reference.0.coloring).unwrap();
    for threads in [2, 4] {
        let par = run_randomized(&inst.graph, &shattering_config(5, threads), Some(&plan));
        assert_rand_identical(&reference, &par);
    }
}

#[test]
fn thread_count_zero_resolves_to_process_default() {
    // `threads = 0` defers to `localsim::default_threads()`; whatever that
    // resolves to, the outputs must match the explicit threads = 1 run.
    let inst = circulant(40, 502);
    let reference = run_randomized(&inst.graph, &shattering_config(3, 1), None);
    let auto = run_randomized(&inst.graph, &shattering_config(3, 0), None);
    assert_rand_identical(&reference, &auto);
}

/// Runs the randomized pipeline with a metrics hub attached and returns
/// the serialized deterministic snapshot (every `_ns` timing and the
/// per-worker lane table excluded; keys sorted, so equal snapshots
/// serialize to equal strings).
fn rand_metrics(g: &Graph, config: &RandConfig, faults: Option<&FaultPlan>) -> String {
    let hub = Arc::new(MetricsHub::new());
    let probe = Probe::disabled().with_metrics(hub.clone());
    match faults {
        Some(plan) => {
            color_randomized_with_faults(g, config, plan, &probe).unwrap();
        }
        None => {
            color_randomized_probed(g, config, &probe).unwrap();
        }
    }
    serde::json::to_string(&hub.deterministic_snapshot())
}

/// The deterministic metrics slice — counters, watermarks, and the pool's
/// unit total — is a commutative reduction over per-thread shards, so it
/// must serialize bit-identically at every thread count.
#[test]
fn metrics_snapshots_are_identical_across_thread_counts() {
    let inst = circulant(80, 500);
    let reference = rand_metrics(&inst.graph, &shattering_config(1, 1), None);
    assert!(
        reference.contains("pool.units"),
        "snapshot must cover the component pool: {reference}"
    );
    assert!(
        reference.contains("exec.rounds"),
        "snapshot must cover the executor: {reference}"
    );
    for threads in [2, 4, 0] {
        let par = rand_metrics(&inst.graph, &shattering_config(1, threads), None);
        assert_eq!(
            reference, par,
            "threads={threads}: deterministic metrics snapshot diverged"
        );
    }
}

#[test]
fn faulted_metrics_snapshots_are_identical_across_thread_counts() {
    let inst = circulant(80, 501);
    let plan = FaultPlan {
        seed: 0xFA17,
        message_drop_p: 0.01,
        ..FaultPlan::default()
    };
    let reference = rand_metrics(&inst.graph, &shattering_config(5, 1), Some(&plan));
    for threads in [2, 4, 0] {
        let par = rand_metrics(&inst.graph, &shattering_config(5, threads), Some(&plan));
        assert_eq!(
            reference, par,
            "threads={threads}: faulted metrics snapshot diverged"
        );
    }
}

#[test]
fn deterministic_pipeline_metrics_snapshots_are_identical() {
    let g = generators::clique_ring(12, 16);
    let snapshot = |threads: usize| {
        let hub = Arc::new(MetricsHub::new());
        let probe = Probe::disabled().with_metrics(hub.clone());
        let mut config = Config::for_delta(16);
        config.threads = threads;
        color_deterministic_probed(&g, &config, &probe).unwrap();
        serde::json::to_string(&hub.deterministic_snapshot())
    };
    let reference = snapshot(1);
    for threads in [2, 4, 0] {
        assert_eq!(
            reference,
            snapshot(threads),
            "threads={threads}: deterministic metrics snapshot diverged"
        );
    }
}

fn run_deterministic(g: &Graph, threads: usize) -> (Report, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let probe = Probe::new(sink.clone());
    let mut config = Config::for_delta(16);
    config.threads = threads;
    let report = color_deterministic_probed(g, &config, &probe).unwrap();
    (report, sink.events())
}

#[test]
fn deterministic_pipeline_is_bit_identical_across_thread_counts() {
    // The deterministic pipeline's pooled unit is the loophole brute-force
    // step of the easy sweep; clique rings have loopholes at every joint.
    let g = generators::clique_ring(12, 16);
    let reference = run_deterministic(&g, 1);
    verify_delta_coloring(&g, &reference.0.coloring).unwrap();
    for threads in [2, 4] {
        let par = run_deterministic(&g, threads);
        assert_eq!(reference.0.coloring, par.0.coloring);
        assert_eq!(reference.0.ledger.total(), par.0.ledger.total());
        assert_eq!(normalize(&reference.1), normalize(&par.1));
    }
}
