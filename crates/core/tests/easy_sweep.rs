//! Direct tests of the Algorithm 3 sweep (`color_easy_and_loopholes`) on
//! controlled instances.

use acd::{compute_acd, AcdParams};
use delta_core::{
    color_easy_and_loopholes, color_easy_and_loopholes_scoped, detect_loopholes,
    DeltaColoringError, Loophole, LoopholeReport,
};
use graphgen::generators;
use graphgen::{Coloring, NodeId};
use localsim::RoundLedger;
use primitives::ruling::RulingStyle;

#[test]
fn sweep_colors_a_clique_ring_completely() {
    // Every clique of the ring is easy (planted 4-cycles across the ring
    // joints); the sweep alone must color the whole graph.
    let g = generators::clique_ring(12, 16);
    let acd = compute_acd(&g, &AcdParams::for_delta(16));
    assert!(acd.is_dense());
    let loopholes = detect_loopholes(&g, &acd.clique_of);
    assert!(
        loopholes.count() > 0,
        "ring joints must be detected as loopholes"
    );
    let mut coloring = Coloring::empty(g.n());
    let mut ledger = RoundLedger::new();
    let stats = color_easy_and_loopholes(
        &g,
        &loopholes,
        1,
        RulingStyle::Deterministic,
        0,
        &mut coloring,
        &mut ledger,
    )
    .unwrap();
    coloring.check_complete(&g, 16).unwrap();
    assert_eq!(stats.colored, g.n());
    assert!(stats.selected >= 1);
    assert!(stats.layers >= 1);
    assert!(ledger.total_for("easy") > 0);
}

#[test]
fn sweep_respects_scope() {
    // Two disjoint cycles of cliques; scope restricted to the first one:
    // the second must remain untouched.
    let a = generators::clique_ring(8, 16);
    let b = generators::clique_ring(8, 16);
    let mut builder = graphgen::GraphBuilder::new(a.n() + b.n());
    builder.add_graph(&a, 0);
    builder.add_graph(&b, a.n() as u32);
    let g = builder.build().unwrap();
    let acd = compute_acd(&g, &AcdParams::for_delta(16));
    let loopholes = detect_loopholes(&g, &acd.clique_of);
    let scope: Vec<bool> = (0..g.n()).map(|v| v < a.n()).collect();
    let mut coloring = Coloring::empty(g.n());
    let mut ledger = RoundLedger::new();
    color_easy_and_loopholes_scoped(
        &g,
        &loopholes,
        1,
        RulingStyle::Deterministic,
        Some(&scope),
        0,
        &mut coloring,
        &mut ledger,
    )
    .unwrap();
    for v in g.vertices() {
        assert_eq!(coloring.is_colored(v), v.index() < a.n(), "{v}");
    }
}

#[test]
fn sweep_reports_missing_anchors() {
    // Uncolored vertices with no loophole anywhere: structured error.
    let g = generators::complete(8); // K8 has no loopholes
    let votes = LoopholeReport {
        vote: vec![None; 8],
        rounds: 0,
    };
    let mut coloring = Coloring::empty(8);
    let mut ledger = RoundLedger::new();
    let err = color_easy_and_loopholes(
        &g,
        &votes,
        1,
        RulingStyle::Deterministic,
        0,
        &mut coloring,
        &mut ledger,
    )
    .unwrap_err();
    assert!(matches!(err, DeltaColoringError::UnsupportedStructure(_)));
}

#[test]
fn sweep_skips_stale_votes_but_uses_fresh_anchors() {
    // A path-shaped low-degree anchor suffices to sweep a small graph.
    let g = generators::path(6); // endpoints have degree 1 < Δ=2... Δ=2 here
    let mut votes = LoopholeReport {
        vote: vec![None; 6],
        rounds: 0,
    };
    votes.vote[0] = Some(Loophole::LowDegree(NodeId(0)));
    votes.vote[5] = Some(Loophole::LowDegree(NodeId(5)));
    let mut coloring = Coloring::empty(6);
    let mut ledger = RoundLedger::new();
    color_easy_and_loopholes(
        &g,
        &votes,
        1,
        RulingStyle::Deterministic,
        0,
        &mut coloring,
        &mut ledger,
    )
    .unwrap();
    coloring.check_complete(&g, 2).unwrap();
}

#[test]
fn sweep_no_op_when_everything_colored() {
    let g = generators::cycle(8);
    let mut coloring = Coloring::empty(8);
    for v in g.vertices() {
        coloring.set(v, graphgen::Color(v.0 % 2));
    }
    let votes = LoopholeReport {
        vote: vec![None; 8],
        rounds: 0,
    };
    let mut ledger = RoundLedger::new();
    let stats = color_easy_and_loopholes(
        &g,
        &votes,
        1,
        RulingStyle::Deterministic,
        0,
        &mut coloring,
        &mut ledger,
    )
    .unwrap();
    assert_eq!(stats.colored, 0);
    assert_eq!(ledger.total(), 0);
}
