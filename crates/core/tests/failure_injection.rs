//! Failure injection: corrupted inputs and outputs are rejected with
//! structured errors — never silently accepted, never panicking across the
//! public API boundary.

use delta_core::{
    brute_force_color_loophole, color_deterministic, color_randomized, Config, DeltaColoringError,
    Loophole, RandConfig,
};
use graphgen::coloring::{verify_delta_coloring, ColoringError};
use graphgen::generators::{self, HardCliqueParams};
use graphgen::{Color, Coloring, Graph, GraphBuilder, NodeId};

fn hard_instance(seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques(&HardCliqueParams {
        cliques: 34,
        delta: 16,
        external_per_vertex: 1,
        seed,
    })
    .unwrap()
}

#[test]
fn corrupted_coloring_rejected_by_validator() {
    let inst = hard_instance(90);
    let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
    // Flip one vertex to a neighbor's color.
    let v = NodeId(0);
    let w = inst.graph.neighbors(v)[0];
    let mut bad = report.coloring.clone();
    bad.unset(v);
    bad.set(v, bad.get(w).unwrap());
    assert!(matches!(
        verify_delta_coloring(&inst.graph, &bad),
        Err(ColoringError::Monochromatic(..))
    ));
    // Erase one vertex.
    let mut partial = report.coloring.clone();
    partial.unset(NodeId(3));
    assert!(matches!(
        verify_delta_coloring(&inst.graph, &partial),
        Err(ColoringError::Uncolored(_))
    ));
    // Out-of-palette color.
    let mut wide = report.coloring;
    wide.unset(NodeId(5));
    wide.set(NodeId(5), Color(999));
    assert!(matches!(
        verify_delta_coloring(&inst.graph, &wide),
        Err(ColoringError::ColorOutOfRange { .. })
    ));
}

#[test]
fn hidden_max_clique_is_caught() {
    // Embed a K17 (Δ+1 at Δ=16) alongside a hard instance: the pipeline
    // must detect impossibility rather than emit a bad coloring.
    let inst = hard_instance(91);
    let n0 = inst.graph.n();
    let mut b = GraphBuilder::new(n0 + 17);
    b.add_graph(&inst.graph, 0);
    let clique: Vec<NodeId> = (n0..n0 + 17).map(NodeId::from).collect();
    b.add_clique(&clique);
    let g = b.build().unwrap();
    let err = color_deterministic(&g, &Config::for_delta(16)).unwrap_err();
    assert_eq!(err, DeltaColoringError::ContainsMaxClique);
}

#[test]
fn odd_cycle_like_graphs_are_refused_not_miscolored() {
    // An odd cycle has Δ = 2 < 4: refused as unsupported (the paper's
    // algorithm targets larger Δ; Brooks itself excludes odd cycles).
    let g = generators::cycle(9);
    assert!(matches!(
        color_deterministic(&g, &Config::for_delta(2)),
        Err(DeltaColoringError::UnsupportedStructure(_))
    ));
}

#[test]
fn loophole_brute_force_reports_unsolvable() {
    // Complete K5 with only four colors available: no deg-list extension.
    let g = generators::complete(5);
    let coloring = Coloring::empty(5);
    let vs: Vec<NodeId> = g.vertices().collect();
    assert!(brute_force_color_loophole(&g, &coloring, &vs, 4).is_none());
}

#[test]
fn loophole_vertices_api_is_total() {
    // Both loophole shapes expose their vertex sets coherently.
    let single = Loophole::LowDegree(NodeId(7));
    assert_eq!(single.vertices(), vec![NodeId(7)]);
    let cyc = Loophole::EvenCycle(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    assert_eq!(cyc.vertices().len(), 4);
}

#[test]
fn disconnected_inputs_are_handled() {
    // Two disjoint hard instances in one graph: still colorable.
    let a = hard_instance(92);
    let b2 = hard_instance(93);
    let mut b = GraphBuilder::new(a.graph.n() + b2.graph.n());
    b.add_graph(&a.graph, 0);
    b.add_graph(&b2.graph, a.graph.n() as u32);
    let g = b.build().unwrap();
    let report = color_deterministic(&g, &Config::for_delta(16)).unwrap();
    verify_delta_coloring(&g, &report.coloring).unwrap();
    let report = color_randomized(&g, &RandConfig::for_delta(16, 5)).unwrap();
    verify_delta_coloring(&g, &report.coloring).unwrap();
}

#[test]
fn empty_and_trivial_graphs_error_cleanly() {
    let empty = Graph::from_edges(0, []).unwrap();
    assert!(color_deterministic(&empty, &Config::for_delta(4)).is_err());
    let lone = Graph::from_edges(3, []).unwrap();
    assert!(color_deterministic(&lone, &Config::for_delta(4)).is_err());
}

#[test]
fn randomized_rejects_what_deterministic_rejects() {
    let g = generators::random_regular(80, 8, 4); // sparse
    let det = color_deterministic(&g, &Config::for_delta(8));
    let rand = color_randomized(&g, &RandConfig::for_delta(8, 1));
    assert!(matches!(det, Err(DeltaColoringError::NotDense { .. })));
    assert!(matches!(rand, Err(DeltaColoringError::NotDense { .. })));
}
