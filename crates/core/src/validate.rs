//! Mechanized post-run validation: sweeps a finished (or faulted) run for
//! every violation instead of stopping at the first.
//!
//! The pipelines' own `check_complete` calls abort on the first problem —
//! good for fail-fast tests, useless for diagnosing a faulted run where
//! several things went wrong at once. This module returns *all* of them:
//!
//! * [`check_coloring`] — proper-coloring violations (monochromatic
//!   edges), palette-bound violations (a color `≥ Δ`), and uncolored
//!   vertices, in one sweep.
//! * [`check_acd`] — Lemma 2's properties via [`acd::verify_acd`] plus a
//!   membership sweep (every vertex in exactly one clique or none).
//! * [`check_matching`] — Phase 1 invariants on a [`BalancedMatching`]:
//!   edges exist in the graph, cross distinct cliques, and no vertex is
//!   matched twice.
//!
//! [`validate_coloring`] bundles the coloring sweep into a
//! [`ValidationReport`] — the object the fault-injection loop and the CLI
//! consume.

use std::fmt;

use acd::AcdResult;
use graphgen::{Coloring, Graph, NodeId};

use crate::phase1::BalancedMatching;

/// One concrete violation found by a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two adjacent vertices share a color.
    MonochromaticEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The shared color.
        color: u32,
    },
    /// A vertex uses a color outside `{0, …, palette−1}`.
    PaletteExceeded {
        /// The offending vertex.
        v: NodeId,
        /// Its color.
        color: u32,
        /// The palette bound (Δ for a Δ-coloring).
        palette: u32,
    },
    /// A vertex was left uncolored.
    Uncolored {
        /// The uncolored vertex.
        v: NodeId,
    },
    /// The almost-clique decomposition violates Lemma 2 or its membership
    /// bookkeeping is inconsistent.
    Acd(String),
    /// A Phase 1 matching edge breaks an invariant.
    Matching(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MonochromaticEdge { u, v, color } => {
                write!(f, "monochromatic edge {u}–{v} (both color {color})")
            }
            Violation::PaletteExceeded { v, color, palette } => {
                write!(f, "vertex {v} uses color {color} ≥ palette bound {palette}")
            }
            Violation::Uncolored { v } => write!(f, "vertex {v} is uncolored"),
            Violation::Acd(msg) => write!(f, "ACD: {msg}"),
            Violation::Matching(msg) => write!(f, "matching: {msg}"),
        }
    }
}

/// The full result of a validation sweep.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Every violation found, in sweep order.
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// No violations?
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line summary: `"valid"` or a count-by-kind breakdown.
    pub fn summary(&self) -> String {
        if self.is_ok() {
            return "valid".to_string();
        }
        let (mut mono, mut pal, mut unc, mut other) = (0usize, 0usize, 0usize, 0usize);
        for v in &self.violations {
            match v {
                Violation::MonochromaticEdge { .. } => mono += 1,
                Violation::PaletteExceeded { .. } => pal += 1,
                Violation::Uncolored { .. } => unc += 1,
                _ => other += 1,
            }
        }
        format!(
            "{} violations ({mono} monochromatic edges, {pal} palette, {unc} uncolored, \
             {other} structural)",
            self.violations.len()
        )
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Sweeps `coloring` for every proper-coloring, palette-bound, and
/// completeness violation against `palette` colors (Δ for a Δ-coloring).
///
/// Unlike [`Coloring::check_complete`] this never stops early — a faulted
/// run may hold many independent violations and the caller wants all of
/// them.
pub fn check_coloring(g: &Graph, coloring: &Coloring, palette: u32) -> Vec<Violation> {
    let mut out = Vec::new();
    for v in g.vertices() {
        match coloring.get(v) {
            None => out.push(Violation::Uncolored { v }),
            Some(c) if c.0 >= palette => out.push(Violation::PaletteExceeded {
                v,
                color: c.0,
                palette,
            }),
            Some(_) => {}
        }
    }
    for (u, v) in g.edges() {
        if let (Some(cu), Some(cv)) = (coloring.get(u), coloring.get(v)) {
            if cu == cv {
                out.push(Violation::MonochromaticEdge { u, v, color: cu.0 });
            }
        }
    }
    out
}

/// Sweeps `coloring` restricted to `scope`: uncolored and palette checks
/// for scope vertices, edge checks for edges with at least one scope
/// endpoint. The fault-injection retry loop uses this to detect damage in
/// a single leftover component without paying a full-graph sweep per
/// attempt.
pub fn check_coloring_scoped(
    g: &Graph,
    coloring: &Coloring,
    palette: u32,
    scope: &[NodeId],
) -> Vec<Violation> {
    let mut in_scope = vec![false; g.n()];
    for &v in scope {
        in_scope[v.index()] = true;
    }
    let mut out = Vec::new();
    for &v in scope {
        let cv = coloring.get(v);
        match cv {
            None => out.push(Violation::Uncolored { v }),
            Some(c) if c.0 >= palette => out.push(Violation::PaletteExceeded {
                v,
                color: c.0,
                palette,
            }),
            Some(_) => {}
        }
        if let Some(c) = cv {
            for &w in g.neighbors(v) {
                // A scope-internal edge visits twice (dedup with v < w); a
                // boundary edge visits once, from its scope endpoint.
                if coloring.get(w) == Some(c) && (!in_scope[w.index()] || v < w) {
                    out.push(Violation::MonochromaticEdge {
                        u: v,
                        v: w,
                        color: c.0,
                    });
                }
            }
        }
    }
    out
}

/// Validates Lemma 2 plus membership consistency for a decomposition,
/// returning violations instead of the first error.
pub fn check_acd(g: &Graph, acd: &AcdResult) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(e) = acd::verify_acd(g, acd) {
        out.push(Violation::Acd(e.to_string()));
    }
    // Membership: clique_of must agree with the clique member lists both
    // ways (verify_acd checks one direction; sweep the other).
    let mut seen = vec![false; g.n()];
    for (ci, c) in acd.cliques.iter().enumerate() {
        for &v in &c.vertices {
            if seen[v.index()] {
                out.push(Violation::Acd(format!(
                    "vertex {v} appears in more than one clique"
                )));
            }
            seen[v.index()] = true;
            if acd.clique_of[v.index()] != Some(ci as u32) {
                out.push(Violation::Acd(format!(
                    "vertex {v} is listed in clique {ci} but clique_of disagrees"
                )));
            }
        }
    }
    for v in g.vertices() {
        if acd.clique_of[v.index()].is_some() && !seen[v.index()] {
            out.push(Violation::Acd(format!(
                "clique_of places {v} in a clique whose member list omits it"
            )));
        }
    }
    out
}

/// Validates Phase 1 invariants on an oriented matching: every edge is a
/// real graph edge, crosses two distinct almost-cliques, and no vertex is
/// matched more than once (balance — each clique's slack comes from
/// vertex-disjoint outgoing edges).
pub fn check_matching(g: &Graph, acd: &AcdResult, matching: &BalancedMatching) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut used = vec![false; g.n()];
    for &(tail, head) in &matching.edges {
        if !g.has_edge(tail, head) {
            out.push(Violation::Matching(format!(
                "oriented edge {tail}→{head} is not an edge of the graph"
            )));
        }
        let (ct, ch) = (acd.clique_of[tail.index()], acd.clique_of[head.index()]);
        if ct.is_none() || ch.is_none() || ct == ch {
            out.push(Violation::Matching(format!(
                "oriented edge {tail}→{head} does not cross two distinct cliques"
            )));
        }
        for v in [tail, head] {
            if used[v.index()] {
                out.push(Violation::Matching(format!(
                    "vertex {v} is matched more than once"
                )));
            }
            used[v.index()] = true;
        }
    }
    out
}

/// Full-coloring validation bundled as a [`ValidationReport`] — the entry
/// point the CLI and fault-injection tests consume.
#[must_use]
pub fn validate_coloring(g: &Graph, coloring: &Coloring, palette: u32) -> ValidationReport {
    ValidationReport {
        violations: check_coloring(g, coloring, palette),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acd::{compute_acd, AcdParams};
    use graphgen::generators::{hard_cliques, HardCliqueParams};
    use graphgen::Color;

    fn instance() -> graphgen::generators::HardCliqueInstance {
        hard_cliques(&HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 11,
        })
        .unwrap()
    }

    #[test]
    fn valid_coloring_passes() {
        let inst = instance();
        let report =
            crate::color_deterministic(&inst.graph, &crate::Config::for_delta(16)).unwrap();
        let val = validate_coloring(&inst.graph, &report.coloring, 16);
        assert!(val.is_ok(), "{val}");
        assert_eq!(val.summary(), "valid");
    }

    #[test]
    fn sweep_reports_every_violation_kind_at_once() {
        let inst = instance();
        let report =
            crate::color_deterministic(&inst.graph, &crate::Config::for_delta(16)).unwrap();
        let mut coloring = report.coloring;
        // Uncolor one vertex, over-color another, and force one clash.
        let a = NodeId(0);
        let b = NodeId(1);
        coloring.unset(a);
        coloring.unset(b);
        coloring.set(b, Color(999));
        let c = NodeId(2);
        let d = *inst
            .graph
            .neighbors(c)
            .iter()
            .find(|&&w| w != a && w != b)
            .unwrap();
        coloring.unset(d);
        coloring.set(d, coloring.get(c).unwrap());
        let val = validate_coloring(&inst.graph, &coloring, 16);
        assert!(!val.is_ok());
        let has = |f: fn(&Violation) -> bool| val.violations.iter().any(f);
        assert!(has(|v| matches!(v, Violation::Uncolored { .. })));
        assert!(has(|v| matches!(v, Violation::PaletteExceeded { .. })));
        assert!(has(|v| matches!(v, Violation::MonochromaticEdge { .. })));
        assert!(val.summary().contains("violations"));
    }

    #[test]
    fn scoped_sweep_sees_only_scope_damage() {
        let inst = instance();
        let report =
            crate::color_deterministic(&inst.graph, &crate::Config::for_delta(16)).unwrap();
        let mut coloring = report.coloring;
        coloring.unset(NodeId(5));
        coloring.unset(NodeId(40));
        let scoped = check_coloring_scoped(&inst.graph, &coloring, 16, &[NodeId(5)]);
        assert_eq!(
            scoped,
            vec![Violation::Uncolored { v: NodeId(5) }],
            "damage outside the scope must not be reported"
        );
    }

    #[test]
    fn acd_sweep_accepts_real_decomposition_and_flags_corruption() {
        let inst = instance();
        let mut acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        assert!(check_acd(&inst.graph, &acd).is_empty());
        // Corrupt membership: point one vertex at the wrong clique.
        let v = acd.cliques[0].vertices[0];
        acd.clique_of[v.index()] = Some((acd.cliques.len() - 1) as u32);
        assert!(!check_acd(&inst.graph, &acd).is_empty());
    }

    #[test]
    fn matching_sweep_flags_bad_edges() {
        let inst = instance();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        // A self-clique "edge": both endpoints in clique 0.
        let members = &acd.cliques[0].vertices;
        let bad = BalancedMatching {
            edges: vec![(members[0], members[1])],
            stats: crate::Phase1Stats::default(),
        };
        let out = check_matching(&inst.graph, &acd, &bad);
        assert!(out
            .iter()
            .any(|v| matches!(v, Violation::Matching(m) if m.contains("distinct cliques"))));
    }
}
