//! Driving the sharded LOCAL runtime from the supervisor.
//!
//! The coloring pipelines in this crate run inside one process; this
//! module is the bridge that runs a [`WireAlgo`] coloring *actually
//! distributed* — graph partitioned across worker shards — while reusing
//! the supervisor's operational policy: its checkpoint directory becomes
//! the shard checkpoint directory, so a killed shard resumes from the
//! same place phase snapshots live, and the run validates its output
//! with [`verify_wire_coloring`] before reporting success.

use graphgen::Graph;
use localsim::{
    verify_wire_coloring, ChaosKill, Executor, FaultPlan, Probe, ShardError, ShardedExecutor,
    SimError, WireAlgo, WorkerBackend,
};

use crate::supervisor::Supervisor;

/// How to run a wire coloring across shards.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Worker shard count; `0` selects the single-process reference
    /// executor (useful as the equivalence baseline).
    pub shards: usize,
    /// The algorithm to run.
    pub algo: WireAlgo,
    /// Simulated network faults, shared verbatim with every shard.
    pub faults: Option<FaultPlan>,
    /// Round budget.
    pub max_rounds: u64,
    /// Checkpoint cadence in rounds (`0` = only the implicit round-0
    /// checkpoint).
    pub checkpoint_every: u64,
    /// Runtime-layer shard kills to inject (testing/chaos).
    pub chaos_kills: Vec<ChaosKill>,
    /// Per-shard respawn budget.
    pub max_respawns: usize,
    /// Worker hosting backend.
    pub backend: WorkerBackend,
}

impl DistributedConfig {
    /// Defaults for `algo`: 4 thread-backed shards, no faults, a
    /// generous round budget, checkpoints every 8 rounds.
    #[must_use]
    pub fn for_algo(algo: WireAlgo) -> Self {
        DistributedConfig {
            shards: 4,
            algo,
            faults: None,
            max_rounds: 100_000,
            checkpoint_every: 8,
            chaos_kills: Vec::new(),
            max_respawns: 4,
            backend: WorkerBackend::Threads,
        }
    }
}

/// Outcome of a distributed wire-coloring run.
#[derive(Debug, Clone)]
pub struct WireColorReport {
    /// Per-node outputs in vertex order.
    pub outputs: Vec<u64>,
    /// Synchronous rounds executed.
    pub rounds: u64,
    /// Distinct colors used, when the algorithm produces a coloring
    /// (`None` for non-coloring workloads like `floodmax`).
    pub colors_used: Option<usize>,
    /// Wire-level traffic of the sharded run; `None` on the
    /// single-process path or when no metrics hub is attached.
    pub traffic: Option<WireTraffic>,
}

/// Wire traffic of a sharded run, read back from the probe's metrics
/// hub (`shard.*` counters) after the run completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTraffic {
    /// Total bytes the coordinator put on the wire (framing included).
    pub bytes_sent: u64,
    /// Total bytes the coordinator read off the wire.
    pub bytes_recv: u64,
    /// Frames in either direction.
    pub frames: u64,
    /// Bytes of cached `Init` frames sent, counting respawn replays.
    pub init_bytes: u64,
    /// Changed (node, state) ghost updates shipped in `RoundGo` kicks.
    pub ghost_updates: u64,
    /// Unchanged boundary states the delta exchange kept off the wire.
    pub ghost_suppressed: u64,
}

impl WireTraffic {
    /// Steady-state payload traffic per round: everything sent after
    /// the `Init` frames, averaged over `rounds`.
    #[must_use]
    pub fn round_bytes(&self, rounds: u64) -> u64 {
        self.bytes_sent
            .saturating_sub(self.init_bytes)
            .checked_div(rounds)
            .unwrap_or(0)
    }
}

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistributedError {
    /// The sharded runtime failed (simulation or transport).
    Shard(ShardError),
    /// The single-process reference path failed.
    Sim(SimError),
    /// The run completed but its output is not a proper coloring.
    InvalidColoring(String),
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::Shard(e) => write!(f, "{e}"),
            DistributedError::Sim(e) => write!(f, "{e}"),
            DistributedError::InvalidColoring(msg) => {
                write!(f, "distributed run produced an invalid coloring: {msg}")
            }
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<ShardError> for DistributedError {
    fn from(e: ShardError) -> Self {
        DistributedError::Shard(e)
    }
}

impl From<SimError> for DistributedError {
    fn from(e: SimError) -> Self {
        DistributedError::Sim(e)
    }
}

/// Runs `cfg.algo` over `graph` — sharded when `cfg.shards > 0`, on the
/// single-process executor otherwise — under `sup`'s checkpoint policy,
/// and verifies coloring outputs before reporting.
///
/// # Errors
///
/// Simulation failures surface exactly as the underlying executor
/// reports them; a completed run with a monochromatic edge or palette
/// overflow returns [`DistributedError::InvalidColoring`].
pub fn run_wire_coloring(
    graph: &Graph,
    cfg: &DistributedConfig,
    sup: &Supervisor,
    probe: Probe,
) -> Result<WireColorReport, DistributedError> {
    let hub = probe.metrics().cloned();
    let run = if cfg.shards == 0 {
        let mut ex = Executor::new(graph).with_probe(probe);
        if let Some(plan) = &cfg.faults {
            ex = ex.with_faults(plan.clone());
        }
        ex.run(&cfg.algo, cfg.max_rounds)?
    } else {
        let mut ex = ShardedExecutor::new(graph)
            .with_shards(cfg.shards)
            .with_probe(probe)
            .with_backend(cfg.backend.clone())
            .with_checkpoint_every(cfg.checkpoint_every)
            .with_checkpoint_dir(sup.checkpoint_dir.clone())
            .with_chaos_kills(cfg.chaos_kills.clone())
            .with_max_respawns(cfg.max_respawns);
        if let Some(plan) = &cfg.faults {
            ex = ex.with_faults(plan.clone());
        }
        ex.run(cfg.algo, cfg.max_rounds)?
    };
    let colors_used = if cfg.algo.is_coloring() {
        Some(verify_wire_coloring(graph, &run.outputs).map_err(DistributedError::InvalidColoring)?)
    } else {
        None
    };
    let traffic = (cfg.shards > 0)
        .then_some(hub)
        .flatten()
        .map(|hub| WireTraffic {
            bytes_sent: hub.counter("shard.bytes_sent").get(),
            bytes_recv: hub.counter("shard.bytes_recv").get(),
            frames: hub.counter("shard.frames").get(),
            init_bytes: hub.counter("shard.init_bytes").get(),
            ghost_updates: hub.counter("shard.ghost_updates_sent").get(),
            ghost_suppressed: hub.counter("shard.ghost_suppressed").get(),
        });
    Ok(WireColorReport {
        outputs: run.outputs,
        rounds: run.rounds,
        colors_used,
        traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::Supervisor;

    #[test]
    fn sharded_and_reference_paths_agree_under_the_supervisor() {
        let g = graphgen::generators::cycle(18);
        let sup = Supervisor::passive();
        let mut cfg = DistributedConfig::for_algo(WireAlgo::Greedy);
        cfg.shards = 3;
        let sharded = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        cfg.shards = 0;
        let single = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert_eq!(sharded.outputs, single.outputs);
        assert_eq!(sharded.rounds, single.rounds);
        assert!(sharded.colors_used.unwrap() <= g.max_degree() + 1);
    }

    #[test]
    fn supervisor_checkpoint_dir_receives_shard_checkpoints() {
        let dir = std::env::temp_dir().join(format!("core-shard-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sup = Supervisor::passive();
        sup.checkpoint_dir = Some(dir.clone());
        let g = graphgen::generators::path(12);
        let mut cfg = DistributedConfig::for_algo(WireAlgo::Greedy);
        cfg.shards = 2;
        cfg.checkpoint_every = 2;
        run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert!(dir.join("shard-checkpoint-0000.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traffic_figures_surface_when_a_metrics_hub_is_attached() {
        let g = graphgen::generators::gnp(40, 0.2, 5);
        let sup = Supervisor::passive();
        let mut cfg = DistributedConfig::for_algo(WireAlgo::Greedy);
        cfg.shards = 2;
        let hub = std::sync::Arc::new(localsim::MetricsHub::new());
        let probe = Probe::disabled().with_metrics(hub);
        let report = run_wire_coloring(&g, &cfg, &sup, probe).unwrap();
        let traffic = report.traffic.expect("hub attached, shards > 0");
        assert!(traffic.init_bytes > 0);
        assert!(traffic.bytes_sent > traffic.init_bytes);
        assert!(traffic.frames > 0);
        assert!(traffic.round_bytes(report.rounds) > 0);
        // No hub, or the single-process path: no traffic report.
        cfg.shards = 0;
        let single = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert!(single.traffic.is_none());
    }

    #[test]
    fn invalid_outputs_are_rejected_not_reported() {
        // FloodMax is not a coloring; its outputs must skip verification.
        let g = graphgen::generators::path(6);
        let sup = Supervisor::passive();
        let mut cfg = DistributedConfig::for_algo(WireAlgo::FloodMax { target: 3 });
        cfg.shards = 2;
        let report = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert_eq!(report.colors_used, None);
        // After 3 rounds of flooding on a path, node 0 knows its 3-ball
        // maximum (node 3) and node 5 knows the global maximum.
        assert_eq!(report.outputs[0], 3);
        assert_eq!(report.outputs[5], 5);
    }
}
