//! Driving the sharded LOCAL runtime from the supervisor.
//!
//! The coloring pipelines in this crate run inside one process; this
//! module is the bridge that runs a [`WireAlgo`] coloring *actually
//! distributed* — graph partitioned across worker shards — while reusing
//! the supervisor's operational policy: its checkpoint directory becomes
//! the shard checkpoint directory, so a killed shard resumes from the
//! same place phase snapshots live, and the run validates its output
//! with [`verify_wire_coloring`] before reporting success.

use std::time::Duration;

use graphgen::Graph;
use localsim::{
    verify_wire_coloring, ChaosKill, Executor, FaultPlan, Liveness, NetFaultPlan, Probe,
    ShardError, ShardedExecutor, SimError, WireAlgo, WorkerBackend,
};
use serde::{Deserialize, Serialize};

use crate::supervisor::Supervisor;

/// How to run a wire coloring across shards.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Worker shard count; `0` selects the single-process reference
    /// executor (useful as the equivalence baseline).
    pub shards: usize,
    /// The algorithm to run.
    pub algo: WireAlgo,
    /// Simulated network faults, shared verbatim with every shard.
    pub faults: Option<FaultPlan>,
    /// Round budget.
    pub max_rounds: u64,
    /// Checkpoint cadence in rounds (`0` = only the implicit round-0
    /// checkpoint).
    pub checkpoint_every: u64,
    /// Runtime-layer shard kills to inject (testing/chaos).
    pub chaos_kills: Vec<ChaosKill>,
    /// Per-shard respawn budget.
    pub max_respawns: usize,
    /// Worker hosting backend.
    pub backend: WorkerBackend,
    /// Wire-level chaos plan (frame delay/dup/corrupt, connection
    /// resets, worker hangs); `None` injects nothing.
    pub net_faults: Option<NetFaultPlan>,
    /// Coordinator liveness policy (connect/barrier timeouts, heartbeat
    /// cadence, worker read timeout).
    pub liveness: Liveness,
}

impl DistributedConfig {
    /// Defaults for `algo`: 4 thread-backed shards, no faults, a
    /// generous round budget, checkpoints every 8 rounds.
    #[must_use]
    pub fn for_algo(algo: WireAlgo) -> Self {
        DistributedConfig {
            shards: 4,
            algo,
            faults: None,
            max_rounds: 100_000,
            checkpoint_every: 8,
            chaos_kills: Vec::new(),
            max_respawns: 4,
            backend: WorkerBackend::Threads,
            net_faults: None,
            liveness: Liveness::default(),
        }
    }
}

/// Outcome of a distributed wire-coloring run.
#[derive(Debug, Clone)]
pub struct WireColorReport {
    /// Per-node outputs in vertex order.
    pub outputs: Vec<u64>,
    /// Synchronous rounds executed.
    pub rounds: u64,
    /// Distinct colors used, when the algorithm produces a coloring
    /// (`None` for non-coloring workloads like `floodmax`).
    pub colors_used: Option<usize>,
    /// Wire-level traffic of the sharded run; `None` on the
    /// single-process path or when no metrics hub is attached.
    pub traffic: Option<WireTraffic>,
}

/// Wire traffic of a sharded run, read back from the probe's metrics
/// hub (`shard.*` counters) after the run completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTraffic {
    /// Total bytes the coordinator put on the wire (framing included).
    pub bytes_sent: u64,
    /// Total bytes the coordinator read off the wire.
    pub bytes_recv: u64,
    /// Frames in either direction.
    pub frames: u64,
    /// Bytes of cached `Init` frames sent, counting respawn replays.
    pub init_bytes: u64,
    /// Changed (node, state) ghost updates shipped in `RoundGo` kicks.
    pub ghost_updates: u64,
    /// Unchanged boundary states the delta exchange kept off the wire.
    pub ghost_suppressed: u64,
    /// Shard ranges the coordinator adopted in-process after their
    /// respawn budget ran out (graceful degradation; 0 is the norm).
    pub adopted_ranges: u64,
}

impl WireTraffic {
    /// Steady-state payload traffic per round: everything sent after
    /// the `Init` frames, averaged over `rounds`.
    #[must_use]
    pub fn round_bytes(&self, rounds: u64) -> u64 {
        self.bytes_sent
            .saturating_sub(self.init_bytes)
            .checked_div(rounds)
            .unwrap_or(0)
    }
}

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistributedError {
    /// The sharded runtime failed (simulation or transport).
    Shard(ShardError),
    /// The single-process reference path failed.
    Sim(SimError),
    /// The run completed but its output is not a proper coloring.
    InvalidColoring(String),
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::Shard(e) => write!(f, "{e}"),
            DistributedError::Sim(e) => write!(f, "{e}"),
            DistributedError::InvalidColoring(msg) => {
                write!(f, "distributed run produced an invalid coloring: {msg}")
            }
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<ShardError> for DistributedError {
    fn from(e: ShardError) -> Self {
        DistributedError::Shard(e)
    }
}

impl From<SimError> for DistributedError {
    fn from(e: SimError) -> Self {
        DistributedError::Sim(e)
    }
}

/// Runs `cfg.algo` over `graph` — sharded when `cfg.shards > 0`, on the
/// single-process executor otherwise — under `sup`'s checkpoint policy,
/// and verifies coloring outputs before reporting.
///
/// # Errors
///
/// Simulation failures surface exactly as the underlying executor
/// reports them; a completed run with a monochromatic edge or palette
/// overflow returns [`DistributedError::InvalidColoring`].
pub fn run_wire_coloring(
    graph: &Graph,
    cfg: &DistributedConfig,
    sup: &Supervisor,
    probe: Probe,
) -> Result<WireColorReport, DistributedError> {
    let hub = probe.metrics().cloned();
    let run = if cfg.shards == 0 {
        let mut ex = Executor::new(graph).with_probe(probe);
        if let Some(plan) = &cfg.faults {
            ex = ex.with_faults(plan.clone());
        }
        ex.run(&cfg.algo, cfg.max_rounds)?
    } else {
        let mut ex = ShardedExecutor::new(graph)
            .with_shards(cfg.shards)
            .with_probe(probe)
            .with_backend(cfg.backend.clone())
            .with_checkpoint_every(cfg.checkpoint_every)
            .with_checkpoint_dir(sup.checkpoint_dir.clone())
            .with_chaos_kills(cfg.chaos_kills.clone())
            .with_max_respawns(cfg.max_respawns)
            .with_liveness(cfg.liveness);
        if let Some(plan) = &cfg.faults {
            ex = ex.with_faults(plan.clone());
        }
        if let Some(plan) = &cfg.net_faults {
            ex = ex.with_net_faults(plan.clone());
        }
        ex.run(cfg.algo, cfg.max_rounds)?
    };
    let colors_used = if cfg.algo.is_coloring() {
        Some(verify_wire_coloring(graph, &run.outputs).map_err(DistributedError::InvalidColoring)?)
    } else {
        None
    };
    let traffic = (cfg.shards > 0)
        .then_some(hub)
        .flatten()
        .map(|hub| WireTraffic {
            bytes_sent: hub.counter("shard.bytes_sent").get(),
            bytes_recv: hub.counter("shard.bytes_recv").get(),
            frames: hub.counter("shard.frames").get(),
            init_bytes: hub.counter("shard.init_bytes").get(),
            ghost_updates: hub.counter("shard.ghost_updates_sent").get(),
            ghost_suppressed: hub.counter("shard.ghost_suppressed").get(),
            adopted_ranges: hub.counter("shard.adopted_ranges").get(),
        });
    Ok(WireColorReport {
        outputs: run.outputs,
        rounds: run.rounds,
        colors_used,
        traffic,
    })
}

/// A self-contained, serializable description of one sharded chaos case
/// — the unit the `delta-color soak` campaign executes and a captured
/// repro bundle replays. Everything that shapes the run's behavior is in
/// here (plus the graph and simulated-fault plan the bundle carries
/// separately), so a failure reproduces from the bundle alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRunSpec {
    /// Worker shard count (at least 1).
    pub shards: usize,
    /// Wire algorithm, in [`WireAlgo`] display form (e.g. `rand:7`).
    pub algo: String,
    /// Round budget.
    pub max_rounds: u64,
    /// Checkpoint cadence in rounds.
    pub checkpoint_every: u64,
    /// Per-shard respawn budget.
    pub max_respawns: usize,
    /// Runtime-layer `(shard, after_round)` kills to inject.
    pub kills: Vec<(u64, u64)>,
    /// Wire-level chaos plan; `None` injects nothing.
    pub net: Option<NetFaultPlan>,
    /// Barrier timeout override in milliseconds (`None` = default).
    pub barrier_timeout_ms: Option<u64>,
    /// Heartbeat cadence override in milliseconds (`None` = default).
    pub heartbeat_ms: Option<u64>,
}

impl ShardRunSpec {
    /// Thread-backed defaults for `algo` over `shards` shards: chaos-free,
    /// checkpointing every 2 rounds with a respawn budget of 4.
    #[must_use]
    pub fn new(shards: usize, algo: &WireAlgo) -> Self {
        ShardRunSpec {
            shards,
            algo: algo.to_string(),
            max_rounds: 100_000,
            checkpoint_every: 2,
            max_respawns: 4,
            kills: Vec::new(),
            net: None,
            barrier_timeout_ms: None,
            heartbeat_ms: None,
        }
    }

    /// The liveness policy this spec selects: defaults with the
    /// millisecond overrides applied.
    #[must_use]
    pub fn liveness(&self) -> Liveness {
        let mut l = Liveness::default();
        if let Some(ms) = self.barrier_timeout_ms {
            l.barrier_timeout = Some(Duration::from_millis(ms));
        }
        if let Some(ms) = self.heartbeat_ms {
            l.heartbeat_every = Duration::from_millis(ms);
        }
        l
    }
}

/// Runs one sharded chaos case and checks it against the single-process
/// reference: same graph, same algorithm, same simulated `faults`, but
/// no kills or wire chaos. Returns `None` when the sharded run matches
/// the reference bit-for-bit (outputs and round count), or a
/// deterministic divergence/failure description.
///
/// Both the soak campaign and `delta-color replay` call this, so a
/// captured failure replays to the *same string* — that equality is the
/// "reproduced" check.
#[must_use]
pub fn run_shard_case(
    graph: &Graph,
    spec: &ShardRunSpec,
    faults: Option<&FaultPlan>,
) -> Option<String> {
    let algo: WireAlgo = match spec.algo.parse() {
        Ok(a) => a,
        Err(e) => return Some(format!("bad algo spec: {e}")),
    };
    let sup = Supervisor::passive();
    let mut reference = DistributedConfig::for_algo(algo);
    reference.shards = 0;
    reference.faults = faults.cloned();
    reference.max_rounds = spec.max_rounds;
    let expect = match run_wire_coloring(graph, &reference, &sup, Probe::disabled()) {
        Ok(r) => r,
        Err(e) => return Some(format!("reference run failed: {e}")),
    };
    let mut cfg = DistributedConfig::for_algo(algo);
    cfg.shards = spec.shards;
    cfg.faults = faults.cloned();
    cfg.max_rounds = spec.max_rounds;
    cfg.checkpoint_every = spec.checkpoint_every;
    cfg.max_respawns = spec.max_respawns;
    cfg.chaos_kills = spec
        .kills
        .iter()
        .map(|&(shard, after_round)| ChaosKill {
            shard: shard as usize,
            after_round,
        })
        .collect();
    cfg.net_faults = spec.net.clone();
    cfg.liveness = spec.liveness();
    let got = match run_wire_coloring(graph, &cfg, &sup, Probe::disabled()) {
        Ok(r) => r,
        Err(e) => return Some(format!("sharded run failed: {e}")),
    };
    if got.rounds != expect.rounds {
        return Some(format!(
            "round count diverged: sharded ran {} rounds, reference ran {}",
            got.rounds, expect.rounds
        ));
    }
    if got.outputs != expect.outputs {
        let v = got
            .outputs
            .iter()
            .zip(&expect.outputs)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(format!(
            "outputs diverged first at node {v}: sharded {} vs reference {}",
            got.outputs[v], expect.outputs[v]
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::Supervisor;

    #[test]
    fn sharded_and_reference_paths_agree_under_the_supervisor() {
        let g = graphgen::generators::cycle(18);
        let sup = Supervisor::passive();
        let mut cfg = DistributedConfig::for_algo(WireAlgo::Greedy);
        cfg.shards = 3;
        let sharded = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        cfg.shards = 0;
        let single = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert_eq!(sharded.outputs, single.outputs);
        assert_eq!(sharded.rounds, single.rounds);
        assert!(sharded.colors_used.unwrap() <= g.max_degree() + 1);
    }

    #[test]
    fn supervisor_checkpoint_dir_receives_shard_checkpoints() {
        let dir = std::env::temp_dir().join(format!("core-shard-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sup = Supervisor::passive();
        sup.checkpoint_dir = Some(dir.clone());
        let g = graphgen::generators::path(12);
        let mut cfg = DistributedConfig::for_algo(WireAlgo::Greedy);
        cfg.shards = 2;
        cfg.checkpoint_every = 2;
        run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert!(dir.join("shard-checkpoint-0000.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traffic_figures_surface_when_a_metrics_hub_is_attached() {
        let g = graphgen::generators::gnp(40, 0.2, 5);
        let sup = Supervisor::passive();
        let mut cfg = DistributedConfig::for_algo(WireAlgo::Greedy);
        cfg.shards = 2;
        let hub = std::sync::Arc::new(localsim::MetricsHub::new());
        let probe = Probe::disabled().with_metrics(hub);
        let report = run_wire_coloring(&g, &cfg, &sup, probe).unwrap();
        let traffic = report.traffic.expect("hub attached, shards > 0");
        assert!(traffic.init_bytes > 0);
        assert!(traffic.bytes_sent > traffic.init_bytes);
        assert!(traffic.frames > 0);
        assert!(traffic.round_bytes(report.rounds) > 0);
        // No hub, or the single-process path: no traffic report.
        cfg.shards = 0;
        let single = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert!(single.traffic.is_none());
    }

    #[test]
    fn shard_cases_replay_to_stable_verdicts() {
        let g = graphgen::generators::gnp(30, 0.2, 11);
        let mut spec = ShardRunSpec::new(2, &WireAlgo::Greedy);
        spec.kills = vec![(0, 1)];
        spec.net = Some(localsim::NetFaultPlan {
            seed: 5,
            dup_p: 0.2,
            ..localsim::NetFaultPlan::default()
        });
        assert_eq!(run_shard_case(&g, &spec, None), None);
        // The spec round-trips through JSON unchanged (bundle capture).
        let json = serde::json::to_string(&spec);
        assert_eq!(serde::json::from_str::<ShardRunSpec>(&json).unwrap(), spec);
        // A broken spec yields a deterministic diagnostic, not a panic.
        spec.algo = "mis".to_string();
        let verdict = run_shard_case(&g, &spec, None).unwrap();
        assert!(verdict.starts_with("bad algo spec"), "{verdict}");
    }

    #[test]
    fn invalid_outputs_are_rejected_not_reported() {
        // FloodMax is not a coloring; its outputs must skip verification.
        let g = graphgen::generators::path(6);
        let sup = Supervisor::passive();
        let mut cfg = DistributedConfig::for_algo(WireAlgo::FloodMax { target: 3 });
        cfg.shards = 2;
        let report = run_wire_coloring(&g, &cfg, &sup, Probe::disabled()).unwrap();
        assert_eq!(report.colors_used, None);
        // After 3 rounds of flooding on a path, node 0 knows its 3-ball
        // maximum (node 3) and node 5 knows the global maximum.
        assert_eq!(report.outputs[0], 3);
        assert_eq!(report.outputs[5], 5);
    }
}
