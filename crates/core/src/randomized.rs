//! Algorithm 4 — the randomized Δ-coloring pipeline (Theorem 2).
//!
//! The shattering framework, following [GHKM21] with this paper's new
//! post-shattering phase:
//!
//! 1. **Large Δ**: for `Δ ≥ threshold` a dense-specific randomized routine
//!    is used (substituting [FHM23]'s `O(log* n)` algorithm; see
//!    DESIGN.md): every hard clique samples a slack triad, pairs are
//!    colored by parallel random trials, and the rest follows by stalled
//!    trials.
//! 2. **Pre-processing**: loopholes and easy cliques are set aside — they
//!    are colored at the very end by Algorithm 3 (its layering provides
//!    the slack ordering).
//! 3. **Pre-shattering**: every hard clique proposes a *T-node* (a slack
//!    triad) with probability `p`; proposals closer than `b` hops in the
//!    clique graph are dropped; surviving pairs are same-colored with
//!    color 0, and a radius-`R` ball around each slack vertex is
//!    *deferred*.
//! 4. **Post-shattering (the paper's new step)**: the remaining uncolored
//!    hard vertices split into small components (w.h.p. `poly Δ · log n`),
//!    each solved **in parallel** by the deterministic pipeline with pair
//!    palette `{1..Δ-1}` (color 0 stays reserved) and the *extended
//!    loophole* rule: a vertex adjacent to an uncolored vertex outside the
//!    component — a deferred vertex or an easy clique — has slack and
//!    anchors its clique. The paper's "useless vertices" (members whose
//!    only external neighbors are colored T-pairs) are excluded from
//!    proposing, exactly as §4 prescribes.
//! 5. **Post-processing**: deferred rings are colored inward, slack
//!    vertices last (they enjoy permanent slack from their same-colored
//!    pair); finally Algorithm 3 sweeps the easy cliques and loopholes.

use acd::{compute_acd, AcdResult};
use graphgen::{Color, Coloring, Graph, NodeId};
use localsim::{Event, FaultKind, FaultPlan, Probe, RecordingSink, RoundLedger};
use primitives::ruling::RulingStyle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::classify::{classify_cliques, Classification, CliqueKind};
use crate::deterministic::{run_hard_phases, Config, PipelineStats};
use crate::easy::color_easy_and_loopholes_scoped;
use crate::error::DeltaColoringError;
use crate::loophole::{detect_loopholes, Loophole, LoopholeReport};
use crate::phase4::run_list_instance;
use crate::supervisor::{DegradedComponent, Supervisor};

/// Configuration of the randomized pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandConfig {
    /// Deterministic pipeline configuration for the post-shattering phase.
    pub base: Config,
    /// RNG seed.
    pub seed: u64,
    /// T-node placement probability per hard clique.
    pub placement_prob: f64,
    /// Minimum clique-graph spacing between placed T-nodes (the paper's
    /// adjustable constant `b`; ≥ 4 keeps distinct T-node triads
    /// non-adjacent and limits useless vertices to one clique boundary).
    pub spacing: usize,
    /// Radius of the deferred ball around each slack vertex. Must exceed
    /// the vertex-level reach of `spacing` (≈ spacing + 2) so that the
    /// deferred balls cover the graph between T-nodes and the leftover
    /// truly shatters.
    pub defer_radius: usize,
    /// Use the large-Δ routine when `Δ ≥` this threshold (the paper's
    /// `Δ = ω(log²¹ n)` branch; `None` disables it).
    pub large_delta_threshold: Option<usize>,
}

impl RandConfig {
    /// Defaults scaled for the instance's Δ.
    pub fn for_delta(delta: usize, seed: u64) -> Self {
        RandConfig {
            base: Config::for_delta(delta),
            seed,
            placement_prob: 0.5,
            spacing: 4,
            defer_radius: 7,
            large_delta_threshold: None,
        }
    }
}

/// Shattering statistics (experiments E3/E8).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShatterStats {
    /// T-nodes proposed before spacing was enforced.
    pub proposed: usize,
    /// T-nodes placed.
    pub t_nodes: usize,
    /// Vertices deferred around slack vertices.
    pub deferred: usize,
    /// Leftover components solved by the deterministic pipeline.
    pub components: usize,
    /// Largest leftover component (vertices).
    pub max_component: usize,
    /// Whether the large-Δ branch ran instead of shattering.
    pub large_delta_branch: bool,
}

/// Fault-recovery statistics (zero on fault-free runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Component re-solves triggered by injected faults.
    pub retries: usize,
    /// Vertices struck (uncolored) by injected faults across all attempts.
    pub struck_vertices: usize,
    /// Components that needed at least one retry.
    pub components_hit: usize,
    /// Maximum attempts any single component needed (1 = clean).
    pub max_attempts: usize,
    /// LOCAL rounds spent on discarded attempts, as charged to the ledger
    /// under `faults/`.
    pub recovery_rounds: u64,
}

/// Outcome of a randomized run.
#[derive(Debug, Clone)]
pub struct RandReport {
    /// The proper Δ-coloring.
    pub coloring: Coloring,
    /// Round accounting (parallel components charged by maximum).
    pub ledger: RoundLedger,
    /// Shattering statistics.
    pub shatter: ShatterStats,
    /// Fault-injection recovery accounting (all zero without faults).
    pub recovery: RecoveryStats,
}

impl RandReport {
    /// Total LOCAL rounds.
    pub fn rounds(&self) -> u64 {
        self.ledger.total()
    }
}

/// Runs Theorem 2's randomized Δ-coloring pipeline on a dense graph.
///
/// # Examples
///
/// ```
/// use delta_core::{color_randomized, RandConfig};
/// use graphgen::generators::{hard_cliques, HardCliqueParams};
/// let inst = hard_cliques(&HardCliqueParams {
///     cliques: 34, delta: 16, external_per_vertex: 1, seed: 2,
/// })?;
/// let report = color_randomized(&inst.graph, &RandConfig::for_delta(16, 7))?;
/// graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Mirrors [`crate::color_deterministic`].
#[allow(clippy::too_many_lines)]
pub fn color_randomized(g: &Graph, config: &RandConfig) -> Result<RandReport, DeltaColoringError> {
    color_randomized_probed(g, config, &Probe::disabled())
}

/// [`color_randomized`] with structured telemetry: the shattering steps
/// open spans on `probe`, every ledger charge surfaces as a `charge`
/// event, and simulator rounds executed by subroutines surface as `round`
/// events.
///
/// # Errors
///
/// As [`color_randomized`].
pub fn color_randomized_probed(
    g: &Graph,
    config: &RandConfig,
    probe: &Probe,
) -> Result<RandReport, DeltaColoringError> {
    color_randomized_inner(g, config, probe, None)
}

/// [`color_randomized_probed`] under an injected [`FaultPlan`]: after each
/// leftover component is solved, faults may *strike* component vertices
/// (uncolor them, with per-vertex probability ≈ `message_drop_p · deg`,
/// deterministic in the plan seed). A scoped [`crate::validate`] sweep
/// detects the damage, the component is rolled back wholesale and
/// re-solved with a salted seed, the retry surfaces as a
/// [`FaultKind::Retry`] telemetry event, and the discarded attempt's
/// rounds are charged to the ledger under `faults/`. Only the struck
/// components re-run — clean components are solved exactly once, and the
/// final attempt of a struck component is always clean, so the pipeline
/// terminates with a coloring that passes [`crate::validate_coloring`].
///
/// With an inert plan ([`FaultPlan::is_active`] false) this is exactly
/// [`color_randomized_probed`].
///
/// # Errors
///
/// As [`color_randomized`].
pub fn color_randomized_with_faults(
    g: &Graph,
    config: &RandConfig,
    plan: &FaultPlan,
    probe: &Probe,
) -> Result<RandReport, DeltaColoringError> {
    color_randomized_inner(g, config, probe, plan.is_active().then_some(plan))
}

fn color_randomized_inner(
    g: &Graph,
    config: &RandConfig,
    probe: &Probe,
    faults: Option<&FaultPlan>,
) -> Result<RandReport, DeltaColoringError> {
    match crate::supervisor::drive_randomized(
        g,
        config,
        faults,
        probe,
        &Supervisor::passive(),
        None,
    )? {
        crate::supervisor::RunOutcome::Complete { report, .. } => Ok(report),
        crate::supervisor::RunOutcome::Suspended { .. }
        | crate::supervisor::RunOutcome::Failed(_) => {
            unreachable!("a passive supervisor neither suspends nor captures failures")
        }
    }
}

/// Pre-shattering: T-node placement with spacing, pair coloring, and the
/// deferred-ring BFS. Returns the slack (T-node) vertices and the ring
/// index per vertex. This is the only phase that consumes the run's
/// randomness (a fresh `StdRng` seeded with `config.seed`), which is why
/// resumable snapshots store its *outputs* rather than any RNG state.
pub(crate) fn rand_phase_preshatter(
    g: &Graph,
    config: &RandConfig,
    acd: &AcdResult,
    cls: &Classification,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
    shatter: &mut ShatterStats,
) -> (Vec<NodeId>, Vec<Option<usize>>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/pre-shattering");
    let clique_graph = build_clique_graph(g, acd, cls);
    let proposers: Vec<u32> = cls
        .hard_ids
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(config.placement_prob))
        .collect();
    shatter.proposed = proposers.len();
    let accepted = enforce_spacing(&clique_graph, &proposers, config.spacing);
    ledger.charge_constant("pre-shattering/T-node spacing", config.spacing as u64);

    // Choose a triad per accepted clique and same-color its pair with 0.
    let mut slack_vertices: Vec<NodeId> = Vec::new();
    for &cid in &accepted {
        let members = &acd.cliques[cid as usize].vertices;
        let mut triad = None;
        'search: for &u in members {
            for &w in g.neighbors(u) {
                if !cls.is_hard_vertex[w.index()]
                    || acd.clique_of[w.index()] == Some(cid)
                    || coloring.is_colored(w)
                {
                    continue;
                }
                if let Some(&v) = members.iter().find(|&&v| v != u && !g.has_edge(v, w)) {
                    triad = Some((u, v, w));
                    break 'search;
                }
            }
        }
        let Some((u, v, w)) = triad else {
            continue; // no usable external hard edge: skip this T-node
        };
        // All pairs share color 0, so a pair adjacent to an earlier pair
        // must be dropped. Spacing >= 4 prevents this entirely; smaller
        // spacings (the E8 ablation) rely on this local O(1) conflict
        // check instead.
        let clash = [v, w].iter().any(|&x| {
            g.neighbors(x)
                .iter()
                .any(|&y| coloring.get(y) == Some(Color(0)))
        });
        if clash {
            continue;
        }
        coloring.set(v, Color(0));
        coloring.set(w, Color(0));
        slack_vertices.push(u);
    }
    shatter.t_nodes = slack_vertices.len();
    ledger.charge_constant("pre-shattering/pair coloring", 2);

    // Defer a radius-R ball of uncolored hard vertices around every slack
    // vertex; ring index = BFS distance (ring 0 = the slack vertex).
    let mut ring: Vec<Option<usize>> = vec![None; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for &u in &slack_vertices {
        ring[u.index()] = Some(0);
        queue.push_back(u);
    }
    while let Some(v) = queue.pop_front() {
        let d = ring[v.index()].expect("queued vertices have rings");
        if d == config.defer_radius {
            continue;
        }
        for &w in g.neighbors(v) {
            if cls.is_hard_vertex[w.index()] && !coloring.is_colored(w) && ring[w.index()].is_none()
            {
                ring[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    shatter.deferred = ring.iter().flatten().count();
    span.add_rounds(ledger.total() - before);
    span.finish();
    (slack_vertices, ring)
}

/// How a pooled component solve was abandoned, if it was.
struct ComponentOutcome {
    writes: Vec<(NodeId, Color)>,
    events: Vec<Event>,
    ledger: RoundLedger,
    recovery: RecoveryStats,
    result: Result<(), DeltaColoringError>,
    /// `Some(reason)` when the solve was abandoned (panic, error under
    /// containment, or budget overrun) and the component needs either
    /// degradation or a hard failure.
    failure: Option<String>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Post-shattering: solve leftover components on the worker pool and
/// merge writes, events, ledgers, and recovery stats in component-index
/// order. Under an active [`Supervisor`] this additionally contains
/// panics, enforces per-component budgets, applies the chaos plan, and
/// degrades quarantined components to [`baselines::brooks_component`];
/// with a passive supervisor it is byte-for-byte the unsupervised phase.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub(crate) fn rand_phase_postshatter(
    g: &Graph,
    config: &RandConfig,
    acd: &AcdResult,
    cls: &Classification,
    faults: Option<&FaultPlan>,
    sup: &Supervisor,
    ring: &[Option<usize>],
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
    shatter: &mut ShatterStats,
    recovery: &mut RecoveryStats,
    degraded: &mut Vec<DegradedComponent>,
) -> Result<(), DeltaColoringError> {
    let delta = g.max_degree();
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/post-shattering");
    let leftover = |v: NodeId| {
        cls.is_hard_vertex[v.index()] && !coloring.is_colored(v) && ring[v.index()].is_none()
    };
    let components = leftover_components(g, &leftover);
    shatter.components = components.len();
    shatter.max_component = components.iter().map(Vec::len).max().unwrap_or(0);

    // No edge joins two leftover components, so a component's writes
    // (confined to its own vertices) can never influence another
    // component's reads: its vertices' neighborhoods, clique boundaries,
    // and the frozen pre-shattering colors. Each component is therefore
    // solved against a *snapshot* of the post-shattering coloring — on
    // the worker pool, with a per-component probe recording its
    // telemetry — and colors, events, ledgers, and recovery stats are
    // merged in component-index order. The observable outcome is a pure
    // function of (snapshot, component, seed): bit-identical at every
    // thread count, including the inline `threads = 1` path. A degraded
    // component likewise contributes deterministically: its attempt is
    // discarded wholesale (no events, no rounds) and replaced by the
    // Brooks fallback charged in merge order. Only the wall-clock budget
    // — documented as a nondeterministic safety net — can break this.
    let record_events = probe.enabled();
    let contain = sup.degrade;
    let outcomes = crate::pool::run_indexed_with_metered(
        crate::pool::effective_threads(config.base.threads),
        components.len(),
        probe.metrics(),
        || coloring.clone(),
        |scratch, i| {
            let comp = &components[i];
            if sup.chaos.skip_components.contains(&i) {
                // Chaos: silently lose this component's work. The final
                // completeness check turns the gap into a validation
                // failure (and, under a bundle dir, a repro bundle).
                return ComponentOutcome {
                    writes: Vec::new(),
                    events: Vec::new(),
                    ledger: RoundLedger::new(),
                    recovery: RecoveryStats::default(),
                    result: Ok(()),
                    failure: None,
                };
            }
            let comp_seed = config.seed.wrapping_add(i as u64);
            let recording = record_events.then(|| std::sync::Arc::new(RecordingSink::new()));
            let mut comp_probe = recording
                .as_ref()
                .map_or_else(Probe::disabled, |r| Probe::new(r.clone()));
            // Metric updates commute, so the component's executor-level
            // metrics can flow straight into the shared hub from the
            // worker — unlike events, they need no replay-in-order merge.
            if let Some(hub) = probe.metrics() {
                comp_probe = comp_probe.with_metrics(hub.clone());
            }
            let mut comp_ledger = RoundLedger::with_probe(comp_probe.clone());
            let mut comp_recovery = RecoveryStats::default();
            let started = std::time::Instant::now();
            let solve = |scratch: &mut Coloring,
                         comp_ledger: &mut RoundLedger,
                         comp_recovery: &mut RecoveryStats| {
                if sup.chaos.panic_components.contains(&i) {
                    panic!("chaos: injected panic in leftover component {i}");
                }
                if let Some(plan) = faults {
                    solve_component_faulted(
                        g,
                        acd,
                        cls,
                        comp,
                        &config.base,
                        comp_seed,
                        plan,
                        &comp_probe,
                        scratch,
                        comp_ledger,
                        comp_recovery,
                    )
                } else {
                    solve_component(
                        g,
                        acd,
                        cls,
                        comp,
                        &config.base,
                        comp_seed,
                        scratch,
                        comp_ledger,
                    )
                }
            };
            // Containment: only with `degrade` does the solve run under
            // `catch_unwind` — a passive supervisor preserves the normal
            // panic propagation of the unsupervised pipeline exactly.
            let (result, mut failure) = if contain {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    solve(scratch, &mut comp_ledger, &mut comp_recovery)
                })) {
                    Ok(Err(e)) => (Ok(()), Some(format!("error: {e}"))),
                    Ok(ok) => (ok, None),
                    Err(payload) => {
                        // Containment path: the run survives this panic,
                        // but nothing guarantees it survives the next one
                        // — push everything buffered so far (trace file,
                        // flight recorder) to durable storage now.
                        probe.flush();
                        if let Some(hub) = probe.metrics() {
                            hub.counter("supervisor.contained_panics").incr();
                        }
                        (Ok(()), Some(format!("panic: {}", panic_message(&*payload))))
                    }
                }
            } else {
                (solve(scratch, &mut comp_ledger, &mut comp_recovery), None)
            };
            if failure.is_none() && result.is_ok() {
                if let Some(budget) = sup.component_round_budget {
                    if comp_ledger.total() > budget {
                        failure = Some(format!(
                            "round budget exceeded: {} > {budget}",
                            comp_ledger.total()
                        ));
                    }
                }
            }
            if failure.is_none() && result.is_ok() {
                if let Some(ms) = sup.component_wall_budget_ms {
                    let elapsed = started.elapsed().as_millis() as u64;
                    if elapsed > ms {
                        failure = Some(format!(
                            "wall-clock budget exceeded: {elapsed} ms > {ms} ms"
                        ));
                    }
                }
            }
            if comp_recovery.retries > 0 {
                comp_recovery.components_hit = 1;
            }
            if let Some(reason) = failure {
                // Quarantine: every write of the abandoned attempt is
                // confined to `comp` (see below), so unsetting the
                // component restores the scratch to the snapshot; the
                // attempt's events and rounds are discarded wholesale.
                for &v in comp {
                    if scratch.get(v).is_some() {
                        scratch.unset(v);
                    }
                }
                return ComponentOutcome {
                    writes: Vec::new(),
                    events: Vec::new(),
                    ledger: RoundLedger::new(),
                    recovery: RecoveryStats::default(),
                    result: Ok(()),
                    failure: Some(reason),
                };
            }
            // Harvest the component's writes (all writes are confined to
            // `comp`: hard phases color scope-hard vertices, the scoped
            // easy sweep colors in-scope vertices, and both scopes are
            // subsets of `comp`), then restore the scratch to the
            // snapshot for the worker's next component.
            let mut writes = Vec::with_capacity(comp.len());
            for &v in comp {
                if let Some(c) = scratch.get(v) {
                    writes.push((v, c));
                    scratch.unset(v);
                }
            }
            ComponentOutcome {
                writes,
                events: recording.map(|r| r.events()).unwrap_or_default(),
                ledger: comp_ledger,
                recovery: comp_recovery,
                result,
                failure: None,
            }
        },
    );
    let mut component_ledgers = Vec::with_capacity(outcomes.len());
    for (i, outcome) in outcomes.into_iter().enumerate() {
        if let Some(reason) = outcome.failure {
            if !sup.degrade {
                return Err(DeltaColoringError::Supervisor(format!(
                    "leftover component {i}: {reason} (degradation disabled)"
                )));
            }
            // Degrade: re-solve the quarantined component with the scoped
            // Brooks baseline against the partial coloring, charge its
            // (sequential) cost to the supervisor ledger, and record the
            // event. Leftover components are pairwise non-adjacent, so
            // the fallback cannot disturb other components.
            let comp = &components[i];
            baselines::brooks_component(g, comp, delta as u32, coloring).map_err(|e| {
                DeltaColoringError::InvariantViolated(format!(
                    "degraded component {i}: Brooks fallback failed: {e}"
                ))
            })?;
            let cost = comp.len() as u64;
            ledger.charge(format!("supervisor/baseline component {i}"), cost);
            probe.emit_with(|| Event::Degraded {
                scope: "post-shattering".to_string(),
                unit: i as u64,
                reason: reason.clone(),
                rounds: cost,
            });
            degraded.push(DegradedComponent {
                index: i,
                reason,
                rounds: cost,
            });
            continue;
        }
        for event in outcome.events {
            probe.emit(event);
        }
        outcome.result?;
        for (v, c) in outcome.writes {
            coloring.set(v, c);
        }
        recovery.retries += outcome.recovery.retries;
        recovery.struck_vertices += outcome.recovery.struck_vertices;
        recovery.components_hit += outcome.recovery.components_hit;
        recovery.recovery_rounds += outcome.recovery.recovery_rounds;
        recovery.max_attempts = recovery.max_attempts.max(outcome.recovery.max_attempts);
        component_ledgers.push(outcome.ledger);
    }
    ledger.absorb_parallel_max("post-shattering", component_ledgers);
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(())
}

/// Post-processing: deferred rings inward, slack vertices last.
pub(crate) fn rand_phase_postprocess(
    g: &Graph,
    config: &RandConfig,
    slack_vertices: &[NodeId],
    ring: &[Option<usize>],
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
) -> Result<(), DeltaColoringError> {
    let delta = g.max_degree();
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/post-processing");
    for l in (1..=config.defer_radius).rev() {
        let active: Vec<NodeId> = g
            .vertices()
            .filter(|&v| ring[v.index()] == Some(l) && !coloring.is_colored(v))
            .collect();
        run_list_instance(
            g,
            &active,
            delta as u32,
            coloring,
            format!("post-processing/T ring {l}"),
            ledger,
        )?;
    }
    let slack_uncolored: Vec<NodeId> = slack_vertices
        .iter()
        .copied()
        .filter(|&v| !coloring.is_colored(v))
        .collect();
    run_list_instance(
        g,
        &slack_uncolored,
        delta as u32,
        coloring,
        "post-processing/slack vertices",
        ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(())
}

/// Post-processing II: easy cliques and loopholes (Algorithm 3), with the
/// randomized ruling style.
pub(crate) fn rand_phase_easy(
    g: &Graph,
    config: &RandConfig,
    loopholes: &LoopholeReport,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
) -> Result<(), DeltaColoringError> {
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/easy sweep");
    color_easy_and_loopholes_scoped(
        g,
        loopholes,
        config.base.ruling_r,
        RulingStyle::Randomized(config.seed ^ 0xE457_0000),
        None,
        config.base.threads,
        coloring,
        ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(())
}

/// Adjacency graph of hard cliques (an edge when any member edge crosses).
fn build_clique_graph(g: &Graph, acd: &AcdResult, cls: &Classification) -> Graph {
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (acd.clique_of[u.index()], acd.clique_of[v.index()]);
        if let (Some(a), Some(b)) = (cu, cv) {
            if a != b
                && cls.kinds[a as usize] == CliqueKind::Hard
                && cls.kinds[b as usize] == CliqueKind::Hard
            {
                edges.push((a.min(b), a.max(b)));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(acd.cliques.len(), edges).expect("clique graph is valid")
}

/// Greedy spacing: accept proposers in id order, dropping any within
/// clique-graph distance `< b` of an accepted one.
fn enforce_spacing(clique_graph: &Graph, proposers: &[u32], b: usize) -> Vec<u32> {
    let mut accepted: Vec<u32> = Vec::new();
    let mut blocked = vec![false; clique_graph.n()];
    let mut sorted = proposers.to_vec();
    sorted.sort_unstable();
    for &c in &sorted {
        if blocked[c as usize] {
            continue;
        }
        accepted.push(c);
        // Block the (b-1)-ball around c.
        let mut dist = vec![usize::MAX; clique_graph.n()];
        dist[c as usize] = 0;
        let mut q = std::collections::VecDeque::from([NodeId(c)]);
        blocked[c as usize] = true;
        while let Some(v) = q.pop_front() {
            let d = dist[v.index()];
            if d + 1 >= b {
                continue;
            }
            for &w in clique_graph.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = d + 1;
                    blocked[w.index()] = true;
                    q.push_back(w);
                }
            }
        }
    }
    accepted
}

/// Connected components of the leftover predicate.
fn leftover_components(g: &Graph, leftover: &impl Fn(NodeId) -> bool) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.n()];
    let mut out = Vec::new();
    // Hoisted BFS stack: drained when a component completes, so one
    // allocation serves every component.
    let mut stack: Vec<NodeId> = Vec::new();
    for s in g.vertices() {
        if seen[s.index()] || !leftover(s) {
            continue;
        }
        seen[s.index()] = true;
        let mut comp = vec![s];
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w.index()] && leftover(w) {
                    seen[w.index()] = true;
                    comp.push(w);
                    stack.push(w);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Solves one leftover component with the modified deterministic pipeline.
#[allow(clippy::too_many_arguments)]
fn solve_component(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    comp: &[NodeId],
    base: &Config,
    seed: u64,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
) -> Result<(), DeltaColoringError> {
    let delta = g.max_degree();
    let mut in_comp = vec![false; g.n()];
    for &v in comp {
        in_comp[v.index()] = true;
    }
    // Anchors: extended loopholes — a neighbor that is uncolored and
    // outside the component (deferred or easy), or two same-colored
    // neighbors (permanent slack from adjacent T-pairs).
    let mut anchor_votes: Vec<Option<Loophole>> = vec![None; g.n()];
    for &v in comp {
        let mut outside_uncolored = false;
        let mut colors_seen: std::collections::HashSet<Color> = std::collections::HashSet::new();
        let mut repeat_color = false;
        for &w in g.neighbors(v) {
            match coloring.get(w) {
                None if !in_comp[w.index()] => outside_uncolored = true,
                Some(c) if !colors_seen.insert(c) => repeat_color = true,
                _ => {}
            }
        }
        if outside_uncolored || repeat_color {
            anchor_votes[v.index()] = Some(Loophole::LowDegree(v));
        }
    }

    // Component cliques: a clique is *scope-hard* when all of its
    // uncolored members lie in this component and none is anchored —
    // already-colored pair vertices are simply dropped from the clique
    // (the §4 "useless vertex" adjustment). Cliques with anchored or
    // deferred members are easy-like and colored by the scoped sweep.
    let mut comp_cliques: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for &v in comp {
        comp_cliques.insert(acd.clique_of[v.index()].expect("hard vertices lie in cliques"));
    }
    let mut scope_hard: Vec<u32> = Vec::new();
    let mut is_scope_hard_vertex = vec![false; g.n()];
    for &cid in &comp_cliques {
        let members = &acd.cliques[cid as usize].vertices;
        let uncolored: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&v| !coloring.is_colored(v))
            .collect();
        let contained = uncolored.iter().all(|&v| in_comp[v.index()]);
        let anchored = uncolored.iter().any(|&v| anchor_votes[v.index()].is_some());
        if contained && !anchored && uncolored.len() >= base.subcliques {
            scope_hard.push(cid);
            for &v in &uncolored {
                is_scope_hard_vertex[v.index()] = true;
            }
        }
    }
    // Scoped C_HEG: every sub-clique (same chunking over *active* members
    // as Phase 1) must field at least one member with an external
    // scope-hard neighbor.
    let mut heg_ids = Vec::new();
    for &cid in &scope_hard {
        let members: Vec<NodeId> = acd.cliques[cid as usize]
            .vertices
            .iter()
            .copied()
            .filter(|&v| is_scope_hard_vertex[v.index()])
            .collect();
        let k = base.subcliques.min(members.len());
        let mut sub_ok = vec![false; k];
        for (j, &v) in members.iter().enumerate() {
            let part = j * k / members.len();
            if g.neighbors(v)
                .iter()
                .any(|&w| is_scope_hard_vertex[w.index()] && acd.clique_of[w.index()] != Some(cid))
            {
                sub_ok[part] = true;
            }
        }
        if sub_ok.iter().all(|&b| b) {
            heg_ids.push(cid);
        }
        // Cliques failing the sub-clique rule stay scope-hard but outside
        // C_HEG: Phase 4 treats them as Type II, stalling on a member with
        // an uncolored easy-like neighbor inside the component.
    }
    let scoped_cls = Classification {
        kinds: cls.kinds.clone(),
        hard_ids: scope_hard,
        heg_ids,
        is_hard_vertex: is_scope_hard_vertex,
        rounds: 1,
    };
    let scoped_votes = LoopholeReport {
        vote: anchor_votes,
        rounds: 1,
    };

    if !scoped_cls.hard_ids.is_empty() {
        let pair_palette: Vec<Color> = (1..delta as u32).map(Color).collect();
        let mut stats = PipelineStats::default();
        run_hard_phases(
            g,
            acd,
            &scoped_cls,
            base,
            coloring,
            ledger,
            &mut stats,
            Some(pair_palette),
            true,
        )?;
    }
    // Scoped easy sweep for the easy-like remainder, anchored at the
    // extended loopholes.
    color_easy_and_loopholes_scoped(
        g,
        &scoped_votes,
        1,
        RulingStyle::Randomized(seed),
        Some(&in_comp),
        // Components are already parallel units; no nested parallelism.
        1,
        coloring,
        ledger,
    )?;
    Ok(())
}

/// Pipeline-level fault stream: vertex strikes in leftover components.
/// Distinct from the executor streams in `localsim::faults` so pipeline
/// strikes never correlate with message drops.
const STREAM_RETRY: u64 = 0x9E7A_11FA_57C0_10CE;

/// Attempt cap per component. The final attempt is always fault-free, so
/// the loop terminates with a validated coloring; with per-vertex strike
/// probability `≈ drop_p · deg` the chance of reaching it is negligible.
const MAX_COMPONENT_ATTEMPTS: usize = 8;

/// [`solve_component`] under fault injection: detect-and-retry at
/// component granularity.
///
/// After each solve, faults may strike component vertices (uncolor them;
/// per-vertex probability `min(1, message_drop_p · deg)`, deterministic in
/// the plan seed, vertex id, and attempt number — the chance that one of
/// the vertex's commit-round messages was dropped). A scoped
/// [`crate::validate`] sweep then *detects* the damage; on any violation
/// the whole component is rolled back to its pre-solve state (all
/// component vertices uncolored — exactly what [`solve_component`]
/// expects), the discarded attempt's rounds are absorbed into the
/// component ledger under `faults/`, a [`FaultKind::Retry`] event fires,
/// and the component re-solves with a salted seed.
#[allow(clippy::too_many_arguments)]
fn solve_component_faulted(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    comp: &[NodeId],
    base: &Config,
    seed: u64,
    plan: &FaultPlan,
    probe: &Probe,
    coloring: &mut Coloring,
    comp_ledger: &mut RoundLedger,
    recovery: &mut RecoveryStats,
) -> Result<(), DeltaColoringError> {
    let delta = g.max_degree();
    for attempt in 0..MAX_COMPONENT_ATTEMPTS {
        let mut attempt_ledger = RoundLedger::with_probe(probe.clone());
        solve_component(
            g,
            acd,
            cls,
            comp,
            base,
            seed.wrapping_add((attempt as u64) << 32),
            coloring,
            &mut attempt_ledger,
        )?;

        let last = attempt + 1 == MAX_COMPONENT_ATTEMPTS;
        let struck: Vec<NodeId> = if last {
            Vec::new() // the final attempt is always clean
        } else {
            comp.iter()
                .copied()
                .filter(|&v| {
                    let p = (plan.message_drop_p * g.neighbors(v).len() as f64).min(1.0);
                    plan.unit(STREAM_RETRY, u64::from(v.0), attempt as u64) < p
                })
                .collect()
        };
        for &v in &struck {
            coloring.unset(v);
        }

        // Detect: the retry is driven by the validation sweep, not by the
        // strike list — any violation in the component's scope (uncolored
        // vertices, clashes with the colored boundary) triggers recovery.
        let damage = crate::validate::check_coloring_scoped(g, coloring, delta as u32, comp);
        if damage.is_empty() {
            recovery.max_attempts = recovery.max_attempts.max(attempt + 1);
            comp_ledger.absorb("post-shattering/solve", attempt_ledger);
            return Ok(());
        }
        if last {
            comp_ledger.absorb("post-shattering/solve", attempt_ledger);
            return Err(DeltaColoringError::InvariantViolated(format!(
                "leftover component failed validation on a fault-free attempt: {}",
                damage[0]
            )));
        }

        // Roll back: uncolor the entire component so the next attempt
        // starts from the state solve_component assumes.
        for &v in comp {
            if coloring.is_colored(v) {
                coloring.unset(v);
            }
        }
        recovery.retries += 1;
        recovery.struck_vertices += struck.len();
        recovery.recovery_rounds += attempt_ledger.total();
        probe.emit_with(|| Event::Fault {
            scope: "pipeline".to_string(),
            round: attempt as u64,
            kind: FaultKind::Retry,
            node: None,
            count: struck.len() as u64,
        });
        comp_ledger.absorb(&format!("faults/attempt {attempt}"), attempt_ledger);
    }
    unreachable!("the final attempt either validates or returns an error")
}

/// The large-Δ branch: a dense-specific randomized routine substituting
/// [FHM23]'s `O(log* n)` algorithm (see DESIGN.md). Every hard clique
/// samples a slack triad; pairs are colored by parallel random trials on
/// the conflict graph; the remainder follows by stalled trials and the
/// easy sweep.
pub(crate) fn color_large_delta(
    g: &Graph,
    config: &RandConfig,
    probe: &Probe,
) -> Result<RandReport, DeltaColoringError> {
    let delta = g.max_degree();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1A26_00E0);
    let mut ledger = RoundLedger::with_probe(probe.clone());
    let mut coloring = Coloring::empty(g.n());
    let mut shatter = ShatterStats {
        large_delta_branch: true,
        ..ShatterStats::default()
    };
    let before = ledger.total();
    let mut span = probe.span("pipeline/large-delta branch");

    let acd = compute_acd(g, &config.base.acd);
    ledger.charge_constant("acd computation", acd.rounds);
    if !acd.is_dense() {
        return Err(DeltaColoringError::NotDense {
            sparse: acd.sparse.len(),
        });
    }
    let loopholes = detect_loopholes(g, &acd.clique_of);
    ledger.charge_constant("loophole detection", loopholes.rounds);
    let cls = classify_cliques(g, &acd, &loopholes)?;
    ledger.charge_constant("hard/easy classification", cls.rounds);

    // Sample one triad per hard clique; pairs must be mutually non-adjacent
    // across cliques only in the conflict-graph sense (handled by trials).
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut slack: Vec<NodeId> = Vec::new();
    let mut used = vec![false; g.n()];
    for &cid in &cls.hard_ids {
        let members = &acd.cliques[cid as usize].vertices;
        let mut triad = None;
        for _ in 0..32 {
            let u = members[rng.gen_range(0..members.len())];
            if used[u.index()] {
                continue;
            }
            let externals: Vec<NodeId> = g
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&w| {
                    cls.is_hard_vertex[w.index()]
                        && acd.clique_of[w.index()] != Some(cid)
                        && !used[w.index()]
                })
                .collect();
            if externals.is_empty() {
                continue;
            }
            let w = externals[rng.gen_range(0..externals.len())];
            if let Some(&v) = members
                .iter()
                .find(|&&v| v != u && !used[v.index()] && !g.has_edge(v, w))
            {
                triad = Some((u, v, w));
                break;
            }
        }
        if let Some((u, v, w)) = triad {
            for x in [u, v, w] {
                used[x.index()] = true;
            }
            pairs.push((v, w));
            slack.push(u);
        }
    }
    shatter.t_nodes = pairs.len();
    ledger.charge_constant("large-delta/triad sampling", 2);

    // Color pairs by parallel random trials on the pair-conflict graph.
    let trial_rounds = random_pair_trials(g, &pairs, delta as u32, &mut rng, &mut coloring)?;
    ledger.charge_virtual("large-delta/pair trials", trial_rounds, 3);

    // Color everything else: non-slack hard vertices by stalled trials,
    // then slack vertices (permanent slack), then the easy sweep.
    let mut is_slack = vec![false; g.n()];
    for &u in &slack {
        is_slack[u.index()] = true;
    }
    let stage1: Vec<NodeId> = g
        .vertices()
        .filter(|&v| {
            cls.is_hard_vertex[v.index()] && !coloring.is_colored(v) && !is_slack[v.index()]
        })
        .collect();
    // A vertex without a slack source in stage 1 stalls on its clique's
    // slack vertex; cliques without a triad stall on an easy neighbor the
    // same way the deterministic pipeline's Type II handling does. Use the
    // generic instance machinery (which validates palettes).
    run_list_instance(
        g,
        &stage1,
        delta as u32,
        &mut coloring,
        "large-delta/hard body",
        &mut ledger,
    )?;
    let stage2: Vec<NodeId> = g
        .vertices()
        .filter(|&v| is_slack[v.index()] && !coloring.is_colored(v))
        .collect();
    run_list_instance(
        g,
        &stage2,
        delta as u32,
        &mut coloring,
        "large-delta/slack",
        &mut ledger,
    )?;
    color_easy_and_loopholes_scoped(
        g,
        &loopholes,
        config.base.ruling_r,
        RulingStyle::Randomized(config.seed ^ 0x1A26_00E1),
        None,
        config.base.threads,
        &mut coloring,
        &mut ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    coloring
        .check_complete(g, delta as u32)
        .map_err(|e| DeltaColoringError::InvariantViolated(format!("final coloring: {e}")))?;
    Ok(RandReport {
        coloring,
        ledger,
        shatter,
        recovery: RecoveryStats::default(),
    })
}

/// Parallel random color trials for slack pairs: each round every
/// uncolored pair draws a uniform free color; a pair keeps its draw if no
/// conflicting pair drew the same color. Returns the number of trial
/// rounds.
fn random_pair_trials(
    g: &Graph,
    pairs: &[(NodeId, NodeId)],
    palette: u32,
    rng: &mut StdRng,
    coloring: &mut Coloring,
) -> Result<u64, DeltaColoringError> {
    // Conflict graph over pairs.
    let mut pair_of: Vec<Option<u32>> = vec![None; g.n()];
    for (i, &(v, w)) in pairs.iter().enumerate() {
        pair_of[v.index()] = Some(i as u32);
        pair_of[w.index()] = Some(i as u32);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); pairs.len()];
    for (i, &(v, w)) in pairs.iter().enumerate() {
        for x in [v, w] {
            for &y in g.neighbors(x) {
                if let Some(j) = pair_of[y.index()] {
                    if j != i as u32 {
                        adj[i].push(j);
                    }
                }
            }
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    let mut color: Vec<Option<Color>> = vec![None; pairs.len()];
    let budget = 100 + 8 * (usize::BITS - g.n().leading_zeros()) as u64;
    let mut rounds = 0;
    while color.iter().any(Option::is_none) {
        if rounds >= budget {
            return Err(DeltaColoringError::InvariantViolated(
                "pair trials failed to converge within the w.h.p. budget".to_string(),
            ));
        }
        rounds += 1;
        let mut draw: Vec<Option<Color>> = vec![None; pairs.len()];
        for i in 0..pairs.len() {
            if color[i].is_some() {
                continue;
            }
            let taken: std::collections::HashSet<Color> =
                adj[i].iter().filter_map(|&j| color[j as usize]).collect();
            let free: Vec<Color> = (0..palette)
                .map(Color)
                .filter(|c| !taken.contains(c))
                .collect();
            if free.is_empty() {
                return Err(DeltaColoringError::InvariantViolated(
                    "a slack pair ran out of colors (Lemma 16 violated)".to_string(),
                ));
            }
            draw[i] = Some(free[rng.gen_range(0..free.len())]);
        }
        for i in 0..pairs.len() {
            let Some(c) = draw[i] else { continue };
            let clash = adj[i]
                .iter()
                .any(|&j| draw[j as usize] == Some(c) || color[j as usize] == Some(c));
            if !clash {
                color[i] = Some(c);
            }
        }
    }
    for (i, &(v, w)) in pairs.iter().enumerate() {
        let c = color[i].expect("all pairs colored");
        coloring.set(v, c);
        coloring.set(w, c);
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::coloring::verify_delta_coloring;
    use graphgen::generators;

    fn hard(cliques: usize, delta: usize, seed: u64) -> generators::HardCliqueInstance {
        generators::hard_cliques(&generators::HardCliqueParams {
            cliques,
            delta,
            external_per_vertex: 1,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn randomized_colors_hard_instance() {
        let inst = hard(34, 16, 41);
        let report = color_randomized(&inst.graph, &RandConfig::for_delta(16, 1)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert!(report.shatter.t_nodes >= 1);
    }

    #[test]
    fn randomized_seeds_differ_but_both_valid() {
        let inst = hard(60, 16, 42);
        let a = color_randomized(&inst.graph, &RandConfig::for_delta(16, 1)).unwrap();
        let b = color_randomized(&inst.graph, &RandConfig::for_delta(16, 2)).unwrap();
        verify_delta_coloring(&inst.graph, &a.coloring).unwrap();
        verify_delta_coloring(&inst.graph, &b.coloring).unwrap();
    }

    #[test]
    fn randomized_on_mixed_instance() {
        let inst = generators::mixed_dense(&generators::MixedParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 43,
            },
            easy_low_degree: 2,
            easy_four_cycle: 1,
        })
        .unwrap();
        let report = color_randomized(&inst.graph, &RandConfig::for_delta(16, 7)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }

    #[test]
    fn shattering_components_reported() {
        let inst = hard(120, 16, 44);
        let mut config = RandConfig::for_delta(16, 3);
        config.placement_prob = 0.3;
        let report = color_randomized(&inst.graph, &config).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        // With low placement probability something is usually left over.
        assert!(report.shatter.components > 0 || report.shatter.deferred > 0);
    }

    #[test]
    fn large_delta_branch_works() {
        let inst = hard(34, 16, 45);
        let mut config = RandConfig::for_delta(16, 5);
        config.large_delta_threshold = Some(4);
        let report = color_randomized(&inst.graph, &config).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert!(report.shatter.large_delta_branch);
    }

    #[test]
    fn many_seeds_never_fail() {
        let inst = hard(60, 16, 46);
        for seed in 0..8 {
            let report = color_randomized(&inst.graph, &RandConfig::for_delta(16, seed)).unwrap();
            verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        }
    }
}
