//! Phase 3 — Forming slack triads (§3.5, Definition 14, Lemma 15).

use acd::AcdResult;
use graphgen::{Graph, NodeId};
use localsim::RoundLedger;
use serde::{Deserialize, Serialize};

use crate::error::DeltaColoringError;
use crate::phase2::SparsifiedMatching;

/// A slack triad `(u, v, w)`: `v, w ∈ N(u)` and `v ≁ w`. Same-coloring the
/// slack pair `{v, w}` gives the slack vertex `u` one unit of permanent
/// slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlackTriad {
    /// The slack vertex (stays uncolored until the very end of Phase 4).
    pub slack: NodeId,
    /// The internal slack-pair vertex (tail of the clique's second edge).
    pub pair_in: NodeId,
    /// The external slack-pair vertex (head of the clique's first edge).
    pub pair_out: NodeId,
    /// The clique this triad serves.
    pub clique: u32,
}

/// The collection of slack triads.
#[derive(Debug, Clone, Default)]
pub struct TriadSet {
    /// One triad per Type-I⁺ clique.
    pub triads: Vec<SlackTriad>,
    /// Per-vertex triad membership (index into `triads`).
    pub triad_of: Vec<Option<u32>>,
}

/// Forms one slack triad per Type-I⁺ clique from its two outgoing `F3`
/// edges, and verifies Lemma 15: triads are genuinely slack triads (the
/// pair is non-adjacent) and pairwise vertex-disjoint.
///
/// # Errors
///
/// Reports invariant violations (which the paper's Lemmas 9/15 exclude).
pub fn form_slack_triads(
    g: &Graph,
    acd: &AcdResult,
    f3: &SparsifiedMatching,
    ledger: &mut RoundLedger,
) -> Result<TriadSet, DeltaColoringError> {
    let clique_of = |v: NodeId| acd.clique_of[v.index()].expect("F3 touches hard cliques only");
    // Group F3 edges by tail clique.
    let mut by_clique: std::collections::HashMap<u32, Vec<(NodeId, NodeId)>> =
        std::collections::HashMap::new();
    for &(t, h) in &f3.edges {
        by_clique.entry(clique_of(t)).or_default().push((t, h));
    }
    let mut triads = Vec::new();
    let mut triad_of: Vec<Option<u32>> = vec![None; g.n()];
    let mut cids: Vec<u32> = by_clique.keys().copied().collect();
    cids.sort_unstable();
    for cid in cids {
        let edges = &by_clique[&cid];
        if edges.len() != 2 {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "clique {cid} has {} outgoing F3 edges, expected exactly 2",
                edges.len()
            )));
        }
        let (u, w) = edges[0]; // e1: slack vertex u, external pair vertex w
        let (v, _v2) = edges[1]; // e2: internal pair vertex v
        if !g.has_edge(u, v) {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "triad of clique {cid}: slack {u} and internal pair {v} are not adjacent"
            )));
        }
        if g.has_edge(v, w) {
            // Lemma 15 property (i), via Lemma 9.3.
            return Err(DeltaColoringError::InvariantViolated(format!(
                "triad of clique {cid}: pair vertices {v} and {w} are adjacent"
            )));
        }
        let idx = triads.len() as u32;
        for x in [u, v, w] {
            if triad_of[x.index()].is_some() {
                // Lemma 15 property (ii).
                return Err(DeltaColoringError::InvariantViolated(format!(
                    "vertex {x} appears in two slack triads"
                )));
            }
            triad_of[x.index()] = Some(idx);
        }
        triads.push(SlackTriad {
            slack: u,
            pair_in: v,
            pair_out: w,
            clique: cid,
        });
    }
    ledger.charge_constant("phase3/slack triad formation", 1);
    Ok(TriadSet { triads, triad_of })
}
