//! The crate-wide error type.

use std::fmt;

use localsim::SimError;
use primitives::list_coloring::ListColoringError;

/// Why a Δ-coloring run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaColoringError {
    /// The almost-clique decomposition classified vertices as sparse; the
    /// paper's algorithm only covers dense graphs (Definition 4).
    NotDense {
        /// Number of sparse vertices found.
        sparse: usize,
    },
    /// Δ-coloring a `K_{Δ+1}` is impossible (Brooks' theorem precondition).
    ContainsMaxClique,
    /// An almost-clique fails the hard-clique structure (Lemma 9) yet
    /// contains no detectable constant-size loophole — outside the
    /// algorithm's (and the paper's) structural assumptions.
    UnsupportedStructure(String),
    /// A structural invariant the paper proves (Lemmas 9–17) failed at
    /// runtime — indicates a bug or an invalid input.
    InvariantViolated(String),
    /// A distributed subroutine failed.
    Sim(SimError),
    /// A `(deg+1)`-list coloring instance was infeasible.
    ListColoring(String),
    /// The hyperedge-grabbing instance was infeasible or over budget.
    Heg(String),
    /// A run-supervisor operation failed: checkpoint I/O, snapshot
    /// validation on `--resume`, an exhausted component budget with
    /// degradation disabled, or a malformed repro bundle.
    Supervisor(String),
}

impl fmt::Display for DeltaColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaColoringError::NotDense { sparse } => {
                write!(f, "graph is not dense: {sparse} sparse vertices in the ACD")
            }
            DeltaColoringError::ContainsMaxClique => {
                write!(
                    f,
                    "graph contains a clique on Δ+1 vertices; no Δ-coloring exists"
                )
            }
            DeltaColoringError::UnsupportedStructure(msg) => {
                write!(f, "unsupported structure: {msg}")
            }
            DeltaColoringError::InvariantViolated(msg) => {
                write!(f, "invariant violated: {msg}")
            }
            DeltaColoringError::Sim(e) => write!(f, "simulation error: {e}"),
            DeltaColoringError::ListColoring(msg) => write!(f, "list coloring failed: {msg}"),
            DeltaColoringError::Heg(msg) => write!(f, "hyperedge grabbing failed: {msg}"),
            DeltaColoringError::Supervisor(msg) => write!(f, "supervisor: {msg}"),
        }
    }
}

impl std::error::Error for DeltaColoringError {}

impl From<SimError> for DeltaColoringError {
    fn from(e: SimError) -> Self {
        DeltaColoringError::Sim(e)
    }
}

impl From<ListColoringError> for DeltaColoringError {
    fn from(e: ListColoringError) -> Self {
        DeltaColoringError::ListColoring(e.to_string())
    }
}

impl From<hypergraph::HegError> for DeltaColoringError {
    fn from(e: hypergraph::HegError) -> Self {
        DeltaColoringError::Heg(e.to_string())
    }
}
