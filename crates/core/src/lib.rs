//! Distributed Δ-coloring of dense graphs — the primary contribution of
//! *Towards Optimal Distributed Δ-Coloring* (Jakob & Maus, PODC 2025).
//!
//! Brooks' theorem says every connected graph with maximum degree Δ that is
//! neither a `K_{Δ+1}` nor an odd cycle admits a proper Δ-coloring. This
//! crate reproduces the paper's LOCAL-model algorithms for computing such a
//! coloring on **dense** graphs (graphs whose almost-clique decomposition
//! has no sparse vertices, Definition 4):
//!
//! * [`color_deterministic`] — Theorem 1's deterministic pipeline
//!   (Algorithms 1–3): classify almost-cliques into *easy* (touching a
//!   constant-size loophole) and *hard*; give every hard clique a *slack
//!   triad* via maximal matching + hyperedge grabbing + degree splitting;
//!   same-color the slack pairs; finish with `(deg+1)`-list coloring
//!   instances; and finally sweep easy cliques and loopholes by layered
//!   coloring around a ruling set of loopholes.
//! * [`color_randomized`] — Theorem 2's shattering pipeline (Algorithm 4):
//!   randomly placed T-nodes provide slack almost everywhere, leaving
//!   small leftover components that are solved in parallel by a modified
//!   deterministic pipeline with pair palette `{2..Δ}`.
//!
//! Every phase charges its measured LOCAL rounds to a
//! [`localsim::RoundLedger`] returned in the [`Report`], and (with
//! [`Config::check_invariants`]) asserts the paper's structural lemmas
//! (9–17) at runtime.
//!
//! # Example
//!
//! ```
//! use graphgen::generators::{hard_cliques, HardCliqueParams};
//! use delta_core::{color_deterministic, Config};
//!
//! let inst = hard_cliques(&HardCliqueParams {
//!     cliques: 34, delta: 16, external_per_vertex: 1, seed: 3,
//! })?;
//! let report = color_deterministic(&inst.graph, &Config::for_delta(16))?;
//! graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod classify;
mod deterministic;
mod easy;
mod error;
mod extension;
mod loophole;
mod phase1;
mod phase2;
mod phase3;
mod phase4;
mod pool;
mod randomized;
pub mod render;
pub mod shard;
pub mod supervisor;
pub mod validate;

pub use classify::{classify_cliques, Classification, CliqueKind};
pub use deterministic::{
    color_deterministic, color_deterministic_probed, Config, HegAlgo, MatchingAlgo, PipelineStats,
    Report,
};
pub use easy::{color_easy_and_loopholes, color_easy_and_loopholes_scoped, EasyStats};
pub use error::DeltaColoringError;
pub use extension::{
    color_sparse_dense, color_sparse_dense_probed, SparseDenseReport, SparseDenseStats,
};
pub use loophole::{brute_force_color_loophole, detect_loopholes, Loophole, LoopholeReport};
pub use phase1::{balanced_matching, BalancedMatching, Phase1Stats};
pub use phase2::{sparsify_matching, SparsifiedMatching};
pub use phase3::{form_slack_triads, SlackTriad, TriadSet};
pub use phase4::{color_hard_cliques_phase4, Phase4Stats};
pub use randomized::{
    color_randomized, color_randomized_probed, color_randomized_with_faults, RandConfig,
    RandReport, RecoveryStats, ShatterStats,
};
pub use shard::{
    run_shard_case, run_wire_coloring, DistributedConfig, DistributedError, ShardRunSpec,
    WireColorReport, WireTraffic,
};
pub use supervisor::{
    drive_deterministic, drive_randomized, graph_digest, load_bundle, load_snapshot, replay_bundle,
    save_bundle, save_snapshot, shard_bundle, ChaosPlan, DegradedComponent, FailureReport,
    PhaseCursor, PipelineKind, ReplayReport, ReproBundle, RunOutcome, Snapshot, Supervisor,
};
pub use validate::{validate_coloring, ValidationReport, Violation};
