//! Loopholes (Definition 6): constant-size structures that make Δ-coloring
//! locally easy — a vertex of degree `< Δ`, or a non-clique even cycle on
//! at most 6 vertices.
//!
//! Detection is a constant-radius computation (each pattern lives inside a
//! radius-3 ball), so it charges `O(1)` LOCAL rounds. Coloring a loophole
//! once all outside neighbors are colored is a *deg-list coloring* of a
//! 2-connected non-complete subgraph, which always exists (Lemma 7 /
//! [ERT79]); [`brute_force_color_loophole`] finds it by backtracking over
//! degree-truncated palettes.

use graphgen::{Color, Coloring, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// LOCAL rounds charged for loophole detection (radius-3 ball collection).
pub const LOOPHOLE_ROUNDS: u64 = 3;

/// A loophole per Definition 6.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loophole {
    /// A vertex with degree `< Δ`.
    LowDegree(NodeId),
    /// A non-clique even cycle on 4 or 6 vertices, in cyclic order.
    EvenCycle(Vec<NodeId>),
}

impl Loophole {
    /// The vertices of the loophole.
    pub fn vertices(&self) -> Vec<NodeId> {
        match self {
            Loophole::LowDegree(v) => vec![*v],
            Loophole::EvenCycle(vs) => vs.clone(),
        }
    }
}

/// Output of [`detect_loopholes`].
#[derive(Debug, Clone, Default)]
pub struct LoopholeReport {
    /// One representative loophole per *loophole vertex* (a vertex's "vote"
    /// in Algorithm 3); indexed per vertex, `None` = in no detected
    /// loophole.
    pub vote: Vec<Option<Loophole>>,
    /// LOCAL rounds charged.
    pub rounds: u64,
}

impl LoopholeReport {
    /// Whether vertex `v` lies in a detected loophole.
    pub fn is_loophole_vertex(&self, v: NodeId) -> bool {
        self.vote[v.index()].is_some()
    }

    /// Number of loophole vertices.
    pub fn count(&self) -> usize {
        self.vote.iter().filter(|v| v.is_some()).count()
    }
}

/// Detects, for every vertex, one loophole containing it (if any).
///
/// `cluster_of[v]` is the vertex's almost-clique id (used to organize the
/// search; `None` entries are treated as their own singleton cluster).
/// The search covers: low-degree vertices; all non-clique 4-cycles
/// (inside clusters via non-adjacent co-members, across clusters via
/// external edges); and non-clique 6-cycles visible through a vertex with
/// two external edges (the pattern Lemma 10's proof relies on).
pub fn detect_loopholes(g: &Graph, cluster_of: &[Option<u32>]) -> LoopholeReport {
    let n = g.n();
    let delta = g.max_degree();
    let mut vote: Vec<Option<Loophole>> = vec![None; n];

    let assign = |vote: &mut Vec<Option<Loophole>>, lh: Loophole| {
        for v in lh.vertices() {
            if vote[v.index()].is_none() {
                vote[v.index()] = Some(lh.clone());
            }
        }
    };

    // Case 1: low degree.
    for v in g.vertices() {
        if g.degree(v) < delta {
            assign(&mut vote, Loophole::LowDegree(v));
        }
    }

    // Cluster member lists.
    let num_clusters = cluster_of
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_clusters];
    for v in g.vertices() {
        if let Some(c) = cluster_of[v.index()] {
            members[c as usize].push(v);
        }
    }
    let same_cluster = |a: NodeId, b: NodeId| {
        cluster_of[a.index()].is_some() && cluster_of[a.index()] == cluster_of[b.index()]
    };

    // Case 2: intra-cluster non-clique 4-cycles — non-adjacent co-members
    // with two common neighbors.
    for ms in &members {
        for (i, &u) in ms.iter().enumerate() {
            for &w in &ms[i + 1..] {
                if g.has_edge(u, w) {
                    continue;
                }
                let common = graphgen::analysis::common_neighbors(g, u, w);
                if common.len() >= 2 {
                    let cyc = vec![u, common[0], w, common[1]];
                    assign(&mut vote, Loophole::EvenCycle(cyc));
                }
            }
        }
    }

    // Case 3: 4-cycles through an external edge u–v: u, v, x ∈ N(v), and a
    // common neighbor w of u and x.
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if same_cluster(u, v) || u > v {
                continue;
            }
            for &x in g.neighbors(v) {
                if x == u {
                    continue;
                }
                for &w in &graphgen::analysis::common_neighbors(g, u, x) {
                    if w == v {
                        continue;
                    }
                    let cyc = vec![u, v, x, w];
                    if !graphgen::analysis::is_clique(g, &cyc) {
                        assign(&mut vote, Loophole::EvenCycle(cyc));
                        break;
                    }
                }
            }
        }
    }

    // Case 4: 6-cycles via a wedge of two external edges x–v–y plus a path
    // of length 4 from x to y with no two consecutive intra-cluster edges.
    for v in g.vertices() {
        let ext: Vec<NodeId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| !same_cluster(v, w))
            .collect();
        for (i, &x) in ext.iter().enumerate() {
            for &y in &ext[i + 1..] {
                if let Some(mut path) = six_cycle_path(g, cluster_of, x, y, v) {
                    let mut cyc = vec![v];
                    cyc.append(&mut path);
                    if !graphgen::analysis::is_clique(g, &cyc) {
                        assign(&mut vote, Loophole::EvenCycle(cyc));
                    }
                }
            }
        }
    }

    LoopholeReport {
        vote,
        rounds: LOOPHOLE_ROUNDS,
    }
}

/// Path x → … → y of length exactly 4, avoiding `apex`, with no two
/// consecutive intra-cluster edges (which would re-enter the same cluster
/// and be covered by the 4-cycle searches).
fn six_cycle_path(
    g: &Graph,
    cluster_of: &[Option<u32>],
    x: NodeId,
    y: NodeId,
    apex: NodeId,
) -> Option<Vec<NodeId>> {
    let same = |a: NodeId, b: NodeId| {
        cluster_of[a.index()].is_some() && cluster_of[a.index()] == cluster_of[b.index()]
    };
    for &a in g.neighbors(x) {
        if a == apex || a == y {
            continue;
        }
        let xa_intra = same(x, a);
        for &b in g.neighbors(a) {
            if b == apex || b == x || b == y {
                continue;
            }
            if xa_intra && same(a, b) {
                continue;
            }
            let ab_intra = same(a, b);
            for &c in g.neighbors(b) {
                if c == apex || c == x || c == a || c == y {
                    continue;
                }
                if ab_intra && same(b, c) {
                    continue;
                }
                if g.has_edge(c, y) {
                    return Some(vec![x, a, b, c, y]);
                }
            }
        }
    }
    None
}

/// Colors the vertex set of a loophole given that all outside neighbors
/// are already colored: a deg-list instance solved by backtracking over
/// degree-truncated palettes.
///
/// Returns the chosen colors (parallel to `vertices`), or `None` if no
/// proper extension exists — which Lemma 7 guarantees cannot happen for
/// genuine loopholes.
pub fn brute_force_color_loophole(
    g: &Graph,
    coloring: &Coloring,
    vertices: &[NodeId],
    palette: u32,
) -> Option<Vec<Color>> {
    // Free colors per vertex, truncated to induced-degree + 1 (degree-
    // choosability makes any such truncation sufficient).
    let induced_deg = |v: NodeId| {
        g.neighbors(v)
            .iter()
            .filter(|w| vertices.contains(w))
            .count()
    };
    let mut lists: Vec<Vec<Color>> = Vec::with_capacity(vertices.len());
    for &v in vertices {
        let used: std::collections::HashSet<Color> = g
            .neighbors(v)
            .iter()
            .filter_map(|&w| coloring.get(w))
            .collect();
        let list: Vec<Color> = (0..palette)
            .map(Color)
            .filter(|c| !used.contains(c))
            .take(induced_deg(v) + 1)
            .collect();
        lists.push(list);
    }
    let mut chosen: Vec<Option<Color>> = vec![None; vertices.len()];
    if backtrack(g, vertices, &lists, &mut chosen, 0) {
        Some(
            chosen
                .into_iter()
                .map(|c| c.expect("backtracking filled all"))
                .collect(),
        )
    } else {
        None
    }
}

fn backtrack(
    g: &Graph,
    vertices: &[NodeId],
    lists: &[Vec<Color>],
    chosen: &mut Vec<Option<Color>>,
    i: usize,
) -> bool {
    if i == vertices.len() {
        return true;
    }
    'colors: for &c in &lists[i] {
        for (j, &w) in vertices.iter().enumerate() {
            if j < i && chosen[j] == Some(c) && g.has_edge(vertices[i], w) {
                continue 'colors;
            }
        }
        chosen[i] = Some(c);
        if backtrack(g, vertices, lists, chosen, i + 1) {
            return true;
        }
        chosen[i] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    fn no_clusters(n: usize) -> Vec<Option<u32>> {
        vec![None; n]
    }

    #[test]
    fn low_degree_detected() {
        let g = generators::star(4); // leaves have degree 1 < Δ=4
        let rep = detect_loopholes(&g, &no_clusters(5));
        assert!(rep.is_loophole_vertex(NodeId(1)));
        // The center has degree Δ and lies on no even cycle: not a loophole.
        assert!(!rep.is_loophole_vertex(NodeId(0)));
    }

    #[test]
    fn four_cycle_detected() {
        // C4 is 2-regular: no low-degree vertices; it is its own loophole.
        let g = generators::cycle(4);
        let rep = detect_loopholes(&g, &no_clusters(4));
        for v in g.vertices() {
            assert!(rep.is_loophole_vertex(v), "{v}");
            assert!(matches!(rep.vote[v.index()], Some(Loophole::EvenCycle(_))));
        }
    }

    #[test]
    fn clique_has_no_loopholes() {
        let g = generators::complete(6);
        // K6: Δ = 5, all degrees Δ; every 4-cycle is inside the clique.
        let clusters = vec![Some(0); 6];
        let rep = detect_loopholes(&g, &clusters);
        assert_eq!(rep.count(), 0);
    }

    #[test]
    fn odd_cycle_not_a_loophole() {
        let g = generators::cycle(5);
        let rep = detect_loopholes(&g, &no_clusters(5));
        assert_eq!(rep.count(), 0, "C5 is 2-regular and has no even cycle");
    }

    #[test]
    fn hard_instance_has_no_loopholes() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 11,
        })
        .unwrap();
        let clusters: Vec<Option<u32>> = inst.clique_of.iter().map(|&c| Some(c)).collect();
        let rep = detect_loopholes(&inst.graph, &clusters);
        assert_eq!(
            rep.count(),
            0,
            "hard instances are loophole-free by construction"
        );
    }

    #[test]
    fn planted_low_degree_found() {
        let inst = generators::easy_cliques(&generators::EasyCliqueParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 12,
            },
            easy: 2,
            kind: generators::LoopholeKind::LowDegree,
        })
        .unwrap();
        let clusters: Vec<Option<u32>> = inst.clique_of.iter().map(|&c| Some(c)).collect();
        let rep = detect_loopholes(&inst.graph, &clusters);
        assert!(
            rep.count() >= 4,
            "two deleted edges give four low-degree vertices"
        );
        for k in &inst.planted_easy {
            assert!(
                inst.cliques[*k].iter().any(|&v| rep.is_loophole_vertex(v)),
                "planted clique {k} has a loophole vertex"
            );
        }
    }

    #[test]
    fn planted_four_cycle_found() {
        let inst = generators::easy_cliques(&generators::EasyCliqueParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 13,
            },
            easy: 1,
            kind: generators::LoopholeKind::FourCycle,
        })
        .unwrap();
        let clusters: Vec<Option<u32>> = inst.clique_of.iter().map(|&c| Some(c)).collect();
        let rep = detect_loopholes(&inst.graph, &clusters);
        assert!(
            rep.count() >= 4,
            "a planted 4-cycle has at least 4 loophole vertices"
        );
    }

    #[test]
    fn brute_force_colors_even_cycle_with_two_lists() {
        let g = generators::cycle(4);
        let coloring = Coloring::empty(4);
        let vs: Vec<NodeId> = g.vertices().collect();
        let colors = brute_force_color_loophole(&g, &coloring, &vs, 2).unwrap();
        let mut full = Coloring::empty(4);
        for (i, &v) in vs.iter().enumerate() {
            full.set(v, colors[i]);
        }
        full.check_complete(&g, 2).unwrap();
    }

    #[test]
    fn brute_force_respects_outside_colors() {
        // Path a-b where a's other neighbor forces a color.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut coloring = Coloring::empty(3);
        coloring.set(NodeId(0), Color(0));
        let colors = brute_force_color_loophole(&g, &coloring, &[NodeId(1), NodeId(2)], 2).unwrap();
        assert_ne!(colors[0], Color(0));
        assert_ne!(colors[0], colors[1]);
    }

    #[test]
    fn brute_force_reports_impossible() {
        // Triangle with palette 2 cannot be colored.
        let g = generators::complete(3);
        let coloring = Coloring::empty(3);
        let vs: Vec<NodeId> = g.vertices().collect();
        assert!(brute_force_color_loophole(&g, &coloring, &vs, 2).is_none());
    }
}
