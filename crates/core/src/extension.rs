//! Extension beyond the paper: randomized Δ-coloring of graphs with
//! **both** sparse and dense parts.
//!
//! The paper's §1.1 observes that sparse vertices are "extremely simple
//! for randomized algorithms": a one-round color trial gives them
//! *permanent slack* (two same-colored neighbors) with high probability,
//! after which they live in the greedy regime and can be colored last.
//! This module composes that observation with the dense machinery:
//!
//! 1. **Slack generation** — several rounds of random color trials among
//!    the sparse vertices; afterwards every uncolored sparse vertex must
//!    hold permanent slack (w.h.p. for Δ large enough; checked, with a
//!    structured error otherwise — this extension is *preconditioned*, not
//!    a resolution of the paper's open problem).
//! 2. **Dense machinery** — Algorithm 2 on the hard cliques. Type-II
//!    cliques may stall on uncolored sparse or easy neighbors; if a stall
//!    candidate's sparse neighbors were all trial-colored, one slack-owning
//!    neighbor is *uncolored again* (it keeps its own permanent slack, so
//!    deferring it is free).
//! 3. **Easy sweep** — Algorithm 3 scoped to the easy-clique vertices.
//! 4. **Sparse finish** — one `(deg+1)`-list instance over the uncolored
//!    sparse vertices: permanent slack makes every palette large enough.

use acd::compute_acd;
use graphgen::{Color, Coloring, Graph, NodeId};
use localsim::{Probe, RoundLedger};
use primitives::ruling::RulingStyle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::classify::classify_cliques;
use crate::deterministic::{run_hard_phases, PipelineStats};
use crate::easy::color_easy_and_loopholes_scoped;
use crate::error::DeltaColoringError;
use crate::loophole::{detect_loopholes, Loophole};
use crate::phase4::run_list_instance;
use crate::randomized::RandConfig;

/// Statistics of a sparse+dense run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SparseDenseStats {
    /// Sparse vertices in the ACD.
    pub sparse: usize,
    /// Sparse vertices colored by the trials.
    pub trial_colored: usize,
    /// Trial rounds used.
    pub trial_rounds: u64,
    /// Sparse vertices un-colored again to serve as stall slack sources.
    pub assists: usize,
    /// Dense pipeline statistics.
    pub dense: PipelineStats,
}

/// Outcome of a sparse+dense run.
#[derive(Debug, Clone)]
pub struct SparseDenseReport {
    /// The proper Δ-coloring.
    pub coloring: Coloring,
    /// Round accounting.
    pub ledger: RoundLedger,
    /// Statistics.
    pub stats: SparseDenseStats,
}

/// Whether an uncolored vertex holds permanent slack: two neighbors share
/// a color.
fn has_permanent_slack(g: &Graph, coloring: &Coloring, v: NodeId) -> bool {
    let mut seen = std::collections::HashSet::new();
    g.neighbors(v)
        .iter()
        .filter_map(|&w| coloring.get(w))
        .any(|c| !seen.insert(c))
}

/// Randomized Δ-coloring of a graph whose ACD has sparse vertices.
///
/// # Examples
///
/// ```
/// use delta_core::{color_sparse_dense, RandConfig};
/// use graphgen::generators::{sparse_dense_mix, SparseDenseParams};
/// let inst = sparse_dense_mix(&SparseDenseParams {
///     cliques: 68, delta: 32, sparse: 120, cross: 8, seed: 3,
/// })?;
/// let report = color_sparse_dense(&inst.graph, &RandConfig::for_delta(32, 1))?;
/// graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// * Everything [`crate::color_deterministic`] reports for the dense part.
/// * [`DeltaColoringError::UnsupportedStructure`] when slack generation
///   fails for some sparse vertex within the round budget — the regime the
///   paper leaves open (small Δ, adversarial sparse structure).
pub fn color_sparse_dense(
    g: &Graph,
    config: &RandConfig,
) -> Result<SparseDenseReport, DeltaColoringError> {
    color_sparse_dense_probed(g, config, &Probe::disabled())
}

/// [`color_sparse_dense`] with a telemetry probe attached: phase spans,
/// ledger charges, and per-round executor series are emitted to the
/// probe's sink.
///
/// # Errors
///
/// As [`color_sparse_dense`].
#[allow(clippy::too_many_lines)]
pub fn color_sparse_dense_probed(
    g: &Graph,
    config: &RandConfig,
    probe: &Probe,
) -> Result<SparseDenseReport, DeltaColoringError> {
    let delta = g.max_degree();
    if delta < 4 {
        return Err(DeltaColoringError::UnsupportedStructure(format!(
            "maximum degree {delta} is below the supported minimum of 4"
        )));
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5BA2);
    let mut ledger = RoundLedger::with_probe(probe.clone());
    let mut coloring = Coloring::empty(g.n());
    let mut stats = SparseDenseStats::default();

    let mut span = probe.span("pipeline/acd");
    let acd = compute_acd(g, &config.base.acd);
    ledger.charge_constant("acd computation", acd.rounds);
    span.add_rounds(acd.rounds);
    span.finish();
    let is_sparse: Vec<bool> = (0..g.n()).map(|v| acd.clique_of[v].is_none()).collect();
    stats.sparse = acd.sparse.len();

    // --- Step 1: slack generation among sparse vertices. ---
    let mut span = probe.span("pipeline/sparse trials");
    let budget = 6 + (usize::BITS - g.n().leading_zeros()) as u64;
    let mut trial_rounds = 0u64;
    loop {
        let needy: Vec<NodeId> = g
            .vertices()
            .filter(|&v| {
                is_sparse[v.index()]
                    && !coloring.is_colored(v)
                    && g.degree(v) == delta
                    && !has_permanent_slack(g, &coloring, v)
            })
            .collect();
        if needy.is_empty() {
            break;
        }
        if trial_rounds >= budget {
            return Err(DeltaColoringError::UnsupportedStructure(format!(
                "{} sparse vertices failed to acquire slack within {budget} trial rounds \
                 (Δ = {delta} may be too small for the w.h.p. regime)",
                needy.len()
            )));
        }
        trial_rounds += 1;
        // One trial round over ALL uncolored sparse vertices (more colored
        // neighbors = more slack opportunities for the needy ones).
        let active: Vec<NodeId> = g
            .vertices()
            .filter(|&v| is_sparse[v.index()] && !coloring.is_colored(v))
            .collect();
        let mut draw: Vec<Option<Color>> = vec![None; g.n()];
        for &v in &active {
            let used: std::collections::HashSet<Color> = g
                .neighbors(v)
                .iter()
                .filter_map(|&w| coloring.get(w))
                .collect();
            let free: Vec<Color> = (0..delta as u32)
                .map(Color)
                .filter(|c| !used.contains(c))
                .collect();
            if !free.is_empty() {
                draw[v.index()] = Some(free[rng.gen_range(0..free.len())]);
            }
        }
        for &v in &active {
            let Some(c) = draw[v.index()] else { continue };
            let clash = g.neighbors(v).iter().any(|&w| draw[w.index()] == Some(c));
            if !clash {
                coloring.set(v, c);
            }
        }
    }
    stats.trial_rounds = trial_rounds;
    stats.trial_colored = g
        .vertices()
        .filter(|&v| is_sparse[v.index()] && coloring.is_colored(v))
        .count();
    ledger.charge("sparse/slack-generation trials", trial_rounds);
    span.add_rounds(trial_rounds);
    span.finish();

    // --- Step 2: dense machinery. ---
    let before = ledger.total();
    let mut span = probe.span("pipeline/classification");
    let loopholes = detect_loopholes(g, &acd.clique_of);
    ledger.charge_constant("loophole detection", loopholes.rounds);
    let cls = classify_cliques(g, &acd, &loopholes)?;
    ledger.charge_constant("hard/easy classification", cls.rounds);
    span.add_rounds(ledger.total() - before);
    span.finish();

    // Stall assistance: a Type-II clique stalls on an uncolored non-hard
    // neighbor; if a candidate's outside neighbors were all trial-colored,
    // un-color one that owns permanent slack itself.
    let with_ext_hard = |v: NodeId| {
        g.neighbors(v).iter().any(|&w| {
            cls.is_hard_vertex[w.index()] && acd.clique_of[w.index()] != acd.clique_of[v.index()]
        })
    };
    for &cid in &cls.hard_ids {
        if cls.heg_ids.contains(&cid) {
            continue;
        }
        let members = &acd.cliques[cid as usize].vertices;
        let has_stall = members.iter().any(|&v| {
            !with_ext_hard(v)
                && g.neighbors(v)
                    .iter()
                    .any(|&w| !cls.is_hard_vertex[w.index()] && !coloring.is_colored(w))
        });
        if has_stall {
            continue;
        }
        // Find a member + colored sparse neighbor with its own slack.
        let assist = members.iter().find_map(|&v| {
            if with_ext_hard(v) {
                return None;
            }
            g.neighbors(v).iter().copied().find(|&w| {
                is_sparse[w.index()]
                    && coloring.is_colored(w)
                    && has_permanent_slack(g, &coloring, w)
            })
        });
        let Some(w) = assist else {
            return Err(DeltaColoringError::UnsupportedStructure(format!(
                "Type II clique {cid} has no stall source and no assistable sparse neighbor"
            )));
        };
        coloring.unset(w);
        stats.assists += 1;
    }
    ledger.charge_constant("sparse/stall assistance", 2);

    if !cls.hard_ids.is_empty() {
        run_hard_phases(
            g,
            &acd,
            &cls,
            &config.base,
            &mut coloring,
            &mut ledger,
            &mut stats.dense,
            None,
            false,
        )?;
    }

    // --- Step 3: easy sweep over easy cliques and the uncolored sparse
    // region. Every uncolored sparse vertex has permanent slack (or degree
    // < Δ), so it acts as a *slack anchor* — an extended loophole in the
    // sense of the paper's §4 — and joins the sweep both as a vote and as
    // reachable territory.
    let mut votes = loopholes.vote.clone();
    let mut easy_scope: Vec<bool> = (0..g.n())
        .map(|v| acd.clique_of[v].is_some() && !cls.is_hard_vertex[v])
        .collect();
    for v in g.vertices() {
        if is_sparse[v.index()] && !coloring.is_colored(v) {
            easy_scope[v.index()] = true;
            if g.degree(v) == delta && !has_permanent_slack(g, &coloring, v) {
                return Err(DeltaColoringError::UnsupportedStructure(format!(
                    "sparse vertex {v} lost its slack before the final sweep"
                )));
            }
            votes[v.index()] = Some(Loophole::LowDegree(v));
        }
    }
    // Assist easy cliques whose loophole votes went stale (their loophole
    // touched a trial-colored sparse vertex) and that see no uncolored
    // sparse anchor: un-color an adjacent slack-owning sparse vertex.
    for (cid, c) in acd.cliques.iter().enumerate() {
        if cls.is_hard_vertex[c.vertices[0].index()] {
            continue;
        }
        let reachable = c.vertices.iter().any(|&v| {
            let valid_vote = votes[v.index()].as_ref().is_some_and(|lh| {
                lh.vertices()
                    .iter()
                    .all(|&x| !coloring.is_colored(x) && easy_scope[x.index()])
            });
            valid_vote
                || g.neighbors(v)
                    .iter()
                    .any(|&w| easy_scope[w.index()] && !coloring.is_colored(w))
        });
        if reachable {
            continue;
        }
        let assist = c.vertices.iter().find_map(|&v| {
            g.neighbors(v).iter().copied().find(|&w| {
                is_sparse[w.index()]
                    && coloring.is_colored(w)
                    && has_permanent_slack(g, &coloring, w)
            })
        });
        let Some(w) = assist else {
            return Err(DeltaColoringError::UnsupportedStructure(format!(
                "easy clique {cid} has no anchor and no assistable sparse neighbor"
            )));
        };
        coloring.unset(w);
        easy_scope[w.index()] = true;
        votes[w.index()] = Some(Loophole::LowDegree(w));
        stats.assists += 1;
    }
    let merged = crate::loophole::LoopholeReport {
        vote: votes,
        rounds: 0,
    };
    if easy_scope.iter().any(|&b| b) {
        let before = ledger.total();
        let mut span = probe.span("pipeline/easy sweep");
        stats.dense.easy = color_easy_and_loopholes_scoped(
            g,
            &merged,
            config.base.ruling_r,
            RulingStyle::Randomized(config.seed ^ 0xEA5E),
            Some(&easy_scope),
            config.base.threads,
            &mut coloring,
            &mut ledger,
        )?;
        span.add_rounds(ledger.total() - before);
        span.finish();
    }

    // --- Step 4: the sparse finish (anything the sweep did not touch). ---
    let before = ledger.total();
    let mut span = probe.span("pipeline/sparse finish");
    let remaining: Vec<NodeId> = g.vertices().filter(|&v| !coloring.is_colored(v)).collect();
    run_list_instance(
        g,
        &remaining,
        delta as u32,
        &mut coloring,
        "sparse/finish",
        &mut ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();

    coloring
        .check_complete(g, delta as u32)
        .map_err(|e| DeltaColoringError::InvariantViolated(format!("final coloring: {e}")))?;
    Ok(SparseDenseReport {
        coloring,
        ledger,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::coloring::verify_delta_coloring;
    use graphgen::generators::{sparse_dense_mix, SparseDenseParams};

    fn mix(seed: u64) -> graphgen::generators::SparseDenseInstance {
        sparse_dense_mix(&SparseDenseParams {
            cliques: 68,
            delta: 32,
            sparse: 200,
            cross: 16,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn colors_sparse_dense_mixture() {
        let inst = mix(1);
        let report =
            color_sparse_dense(&inst.graph, &RandConfig::for_delta(inst.delta, 5)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert!(report.stats.sparse > 0, "the ACD must see sparse vertices");
        assert!(report.stats.trial_colored > 0);
    }

    #[test]
    fn several_seeds_succeed() {
        let inst = mix(2);
        for seed in 0..4 {
            let report =
                color_sparse_dense(&inst.graph, &RandConfig::for_delta(inst.delta, seed)).unwrap();
            verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        }
    }

    #[test]
    fn pure_sparse_graph_colors() {
        // A random Δ-regular graph: everything sparse, trials + finish.
        let g = graphgen::generators::random_regular(300, 24, 7);
        let report = color_sparse_dense(&g, &RandConfig::for_delta(24, 3)).unwrap();
        verify_delta_coloring(&g, &report.coloring).unwrap();
        assert_eq!(report.stats.dense.hard, 0);
    }

    #[test]
    fn dense_only_graph_still_works() {
        let inst = graphgen::generators::hard_cliques(&graphgen::generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 8,
        })
        .unwrap();
        let report = color_sparse_dense(&inst.graph, &RandConfig::for_delta(16, 2)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert_eq!(report.stats.sparse, 0);
    }

    #[test]
    fn tiny_delta_fails_gracefully_or_colors() {
        // Δ = 6 is far below the w.h.p. regime: either a structured error
        // or a valid coloring, never a panic or an improper coloring.
        let g = graphgen::generators::random_regular(60, 6, 4);
        match color_sparse_dense(&g, &RandConfig::for_delta(6, 1)) {
            Ok(report) => verify_delta_coloring(&g, &report.coloring).unwrap(),
            Err(DeltaColoringError::UnsupportedStructure(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
