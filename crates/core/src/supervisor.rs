//! The run supervisor: phase checkpointing, crash-resumable pipelines,
//! panic containment with baseline degradation, and failure repro bundles.
//!
//! Both pipelines decompose into phase functions
//! ([`crate::deterministic`], [`crate::randomized`]); this module owns the
//! *composition*. A [`Supervisor`] configures what happens at each phase
//! boundary and around each pooled component solve:
//!
//! * **Checkpointing** — with a `checkpoint_dir`, every completed phase
//!   serializes a versioned [`Snapshot`] (graph digest, coloring, ledger,
//!   phase cursor, shattering state, fault plan) through the workspace
//!   serde shim. [`load_snapshot`] + `resume` continue a killed run from
//!   the last boundary, **bit-identical** to the uninterrupted run: phases
//!   at or before the cursor are *silently replayed* (they are
//!   deterministic functions of the graph and config, so they are
//!   recomputed against a throwaway ledger with a disabled probe — no
//!   charge or event is emitted twice), stateful outputs are restored from
//!   the snapshot, and later phases run live.
//! * **Containment** — with `degrade` set, every leftover-component solve
//!   of the randomized pipeline runs under `catch_unwind` and optional
//!   round / wall-clock budgets. A panicking or over-budget component is
//!   quarantined: its partial writes, events, and rounds are discarded,
//!   the component re-solves with the scoped Brooks baseline
//!   ([`baselines::brooks_component`]), a [`localsim::Event::Degraded`]
//!   event fires, and the run completes with a valid coloring.
//! * **Repro bundles** — with a `bundle_dir` (or `capture_failures`), any
//!   run error is converted into a self-contained [`ReproBundle`] (graph,
//!   config, fault plan, chaos plan, violation list) that
//!   [`replay_bundle`] re-executes deterministically.
//!
//! A *passive* supervisor ([`Supervisor::passive`]) does none of the
//! above; `color_randomized`/`color_deterministic` delegate to the drivers
//! here with a passive supervisor, so there is exactly one engine.
//!
//! Round budgets are deterministic (they compare ledger totals) and
//! preserve bit-identity; the wall-clock budget is a nondeterministic
//! safety net, off by default, and excluded from the identity contract —
//! see `docs/RECOVERY.md`.

use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use graphgen::{Coloring, Graph, NodeId};
use localsim::{Event, FaultPlan, FlightRecorder, Probe, RoundLedger};
use serde::{json, Deserialize, Serialize};

use crate::deterministic::{
    det_phase1, det_phase2, det_phase3, det_phase4, det_phase_acd, det_phase_classification,
    det_phase_easy, Config, PipelineStats, Report,
};
use crate::error::DeltaColoringError;
use crate::randomized::{
    color_large_delta, rand_phase_easy, rand_phase_postprocess, rand_phase_postshatter,
    rand_phase_preshatter, RandConfig, RandReport, RecoveryStats, ShatterStats,
};
use crate::shard::{run_shard_case, ShardRunSpec};
use graphgen::Color;

/// On-disk snapshot format version; bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// On-disk repro-bundle format version.
pub const BUNDLE_VERSION: u32 = 1;

/// Which pipeline a snapshot or bundle belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Theorem 1's deterministic pipeline.
    Deterministic,
    /// Theorem 2's randomized shattering pipeline.
    Randomized,
    /// The sharded wire runtime under chaos (a `delta-color soak` case,
    /// replayed through [`crate::shard::run_shard_case`]).
    Shard,
}

/// A phase boundary: the last *completed* phase a snapshot captures.
///
/// `Acd` and `Classification` are shared; `Phase1`–`Phase4` belong to the
/// deterministic pipeline; `PreShattering`–`PostProcessing` to the
/// randomized one. The easy sweep is always the final live step and has
/// no boundary (a run that reached it either completes or fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseCursor {
    /// Almost-clique decomposition done.
    Acd,
    /// Loophole detection + hard/easy classification done.
    Classification,
    /// Deterministic phase 1 (balanced matching) done.
    Phase1,
    /// Deterministic phase 2 (matching sparsification) done.
    Phase2,
    /// Deterministic phase 3 (slack triads) done.
    Phase3,
    /// Deterministic phase 4 (hard-clique coloring) done.
    Phase4,
    /// Randomized pre-shattering (T-nodes, pairs, deferred rings) done.
    PreShattering,
    /// Randomized post-shattering (leftover components solved) done.
    PostShattering,
    /// Randomized post-processing (rings + slack vertices) done.
    PostProcessing,
}

impl PhaseCursor {
    /// Every cursor, in pipeline order.
    pub const ALL: [PhaseCursor; 9] = [
        PhaseCursor::Acd,
        PhaseCursor::Classification,
        PhaseCursor::Phase1,
        PhaseCursor::Phase2,
        PhaseCursor::Phase3,
        PhaseCursor::Phase4,
        PhaseCursor::PreShattering,
        PhaseCursor::PostShattering,
        PhaseCursor::PostProcessing,
    ];

    /// Stable kebab-case name, used in snapshot filenames, `--stop-after`,
    /// and [`localsim::Event::Checkpoint`] payloads.
    pub fn slug(self) -> &'static str {
        match self {
            PhaseCursor::Acd => "acd",
            PhaseCursor::Classification => "classification",
            PhaseCursor::Phase1 => "phase1",
            PhaseCursor::Phase2 => "phase2",
            PhaseCursor::Phase3 => "phase3",
            PhaseCursor::Phase4 => "phase4",
            PhaseCursor::PreShattering => "pre-shattering",
            PhaseCursor::PostShattering => "post-shattering",
            PhaseCursor::PostProcessing => "post-processing",
        }
    }

    /// Position in pipeline order (shared phases first). Only cursors of
    /// the same pipeline are ever compared.
    pub fn ordinal(self) -> u8 {
        Self::ALL.iter().position(|&c| c == self).expect("listed") as u8
    }
}

impl fmt::Display for PhaseCursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

impl FromStr for PhaseCursor {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .iter()
            .copied()
            .find(|c| c.slug() == s)
            .ok_or_else(|| {
                let valid: Vec<&str> = Self::ALL.iter().map(|c| c.slug()).collect();
                format!("unknown phase `{s}`; valid phases: {}", valid.join(", "))
            })
    }
}

impl Serialize for PhaseCursor {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.slug().to_string())
    }
}

impl<'de> Deserialize<'de> for PhaseCursor {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => s.parse().map_err(serde::Error::new),
            other => Err(serde::Error::new(format!(
                "expected phase cursor string, found {other:?}"
            ))),
        }
    }
}

/// Deterministic failure injection for the supervisor itself: force
/// specific leftover components to panic (exercising containment) or to
/// silently skip their solve (producing a final validation failure and
/// hence a repro bundle). Component indices refer to the merge order of
/// [`crate::randomized`]'s leftover components.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Components that panic at the start of their solve.
    pub panic_components: Vec<usize>,
    /// Components whose solve is skipped outright (their vertices stay
    /// uncolored, so the completeness check fails).
    pub skip_components: Vec<usize>,
}

impl ChaosPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panic_components.is_empty() && self.skip_components.is_empty()
    }
}

/// One leftover component the supervisor degraded to the Brooks baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedComponent {
    /// Component index (merge order).
    pub index: usize,
    /// Why the pipeline solve was abandoned ("panic: …", "error: …",
    /// "round budget exceeded: …", "wall-clock budget exceeded: …").
    pub reason: String,
    /// Rounds charged to the ledger for the baseline re-solve.
    pub rounds: u64,
}

/// Supervisor policy for one run. [`Supervisor::passive`] (the default)
/// changes nothing about a run; every field opts into one behavior.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    /// Write a [`Snapshot`] after every completed phase into this
    /// directory (created if missing). Snapshots are written atomically
    /// (temp file + rename), so a kill mid-write never corrupts the
    /// latest good checkpoint.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a [`ReproBundle`] into this directory when the run fails.
    pub bundle_dir: Option<PathBuf>,
    /// Convert run errors into [`RunOutcome::Failed`] even without a
    /// `bundle_dir` (used by [`replay_bundle`]).
    pub capture_failures: bool,
    /// Stop (with [`RunOutcome::Suspended`]) right after checkpointing
    /// this phase. Requires `checkpoint_dir`.
    pub stop_after: Option<PhaseCursor>,
    /// Per-component LOCAL-round budget for post-shattering solves.
    /// Deterministic (compares ledger totals).
    pub component_round_budget: Option<u64>,
    /// Per-component wall-clock budget in milliseconds. A
    /// **nondeterministic safety net**: never enable it in runs whose
    /// telemetry is compared bit-for-bit.
    pub component_wall_budget_ms: Option<u64>,
    /// Contain panics and budget overruns by re-solving the component
    /// with the scoped Brooks baseline instead of aborting the run.
    pub degrade: bool,
    /// Deterministic supervisor-level failure injection.
    pub chaos: ChaosPlan,
    /// A shared flight recorder whose tail of recent events is embedded
    /// into any [`ReproBundle`] this supervisor captures. The recorder
    /// only *sees* events if it is also attached to the run's probe
    /// (typically through a `FanoutSink`); the supervisor never records
    /// into it, it only harvests the tail at failure time.
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Supervisor {
    /// A supervisor that changes nothing (no checkpoints, no containment,
    /// no capture): runs behave exactly as the unsupervised entry points.
    pub fn passive() -> Self {
        Supervisor::default()
    }

    /// Whether run errors become [`RunOutcome::Failed`] (with a bundle
    /// when `bundle_dir` is set) instead of propagating as `Err`.
    pub fn captures_failures(&self) -> bool {
        self.capture_failures || self.bundle_dir.is_some()
    }

    fn validate(&self) -> Result<(), DeltaColoringError> {
        if self.stop_after.is_some() && self.checkpoint_dir.is_none() {
            return Err(DeltaColoringError::Supervisor(
                "--stop-after requires a checkpoint directory".to_string(),
            ));
        }
        Ok(())
    }

    /// The flight recorder's current tail, or empty without a recorder.
    fn flight_tail(&self) -> Vec<Event> {
        self.flight.as_ref().map(|f| f.tail()).unwrap_or_default()
    }
}

/// State the randomized pipeline carries across phase boundaries (the
/// serializable portion of [`Snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandSnapshot {
    /// Run configuration (includes the seed — RNG state is *not*
    /// snapshotted because randomness is only consumed in pre-shattering,
    /// whose outputs are stored here).
    pub config: RandConfig,
    /// Shattering statistics so far.
    pub shatter: ShatterStats,
    /// Fault-recovery statistics so far.
    pub recovery: RecoveryStats,
    /// Slack (T-node) vertices chosen by pre-shattering.
    pub slack_vertices: Vec<NodeId>,
    /// Deferred-ring index per vertex (`None` = not deferred).
    pub ring: Vec<Option<usize>>,
    /// Components degraded to the baseline so far.
    pub degraded: Vec<DegradedComponent>,
}

/// State the deterministic pipeline carries across phase boundaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetSnapshot {
    /// Run configuration.
    pub config: Config,
    /// Pipeline statistics accumulated so far.
    pub stats: PipelineStats,
}

/// A versioned phase-boundary checkpoint. Everything needed to continue
/// the run is either stored here or deterministically recomputable from
/// `(graph, config)` — the graph itself is *not* embedded (it is large
/// and the caller has it); `graph_digest` guards against resuming on the
/// wrong input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Which pipeline wrote this snapshot.
    pub pipeline: PipelineKind,
    /// FNV-1a digest of the graph (vertex count + edge list).
    pub graph_digest: u64,
    /// Vertex count (for error messages).
    pub n: usize,
    /// Edge count (for error messages).
    pub m: usize,
    /// Last completed phase.
    pub cursor: PhaseCursor,
    /// Partial coloring at the boundary.
    pub coloring: Coloring,
    /// Round ledger at the boundary (probe stripped; reattached on
    /// resume so only *future* charges emit telemetry).
    pub ledger: RoundLedger,
    /// Active fault plan, if any.
    pub faults: Option<FaultPlan>,
    /// Randomized-pipeline state (`pipeline == Randomized`).
    pub rand: Option<RandSnapshot>,
    /// Deterministic-pipeline state (`pipeline == Deterministic`).
    pub det: Option<DetSnapshot>,
}

/// A self-contained failure reproduction: graph, configuration, fault and
/// chaos plans, the recorded failure, and the flight-recorder tail (the
/// last events emitted before the run died). [`replay_bundle`] re-runs it.
#[derive(Debug, Clone, Serialize)]
pub struct ReproBundle {
    /// Format version ([`BUNDLE_VERSION`]).
    pub version: u32,
    /// Which pipeline failed.
    pub pipeline: PipelineKind,
    /// The input graph, embedded in full.
    pub graph: Graph,
    /// Randomized config (`pipeline == Randomized`).
    pub rand_config: Option<RandConfig>,
    /// Deterministic config (`pipeline == Deterministic`).
    pub det_config: Option<Config>,
    /// Active fault plan, if any.
    pub faults: Option<FaultPlan>,
    /// Supervisor chaos plan in effect.
    pub chaos: ChaosPlan,
    /// Whether degradation was enabled.
    pub degrade: bool,
    /// Last phase completed before the failure, if any.
    pub cursor: Option<String>,
    /// The error that ended the run.
    pub error: String,
    /// Rendered violation list from the final validation sweep.
    pub violations: Vec<String>,
    /// Components degraded before the failure.
    pub degraded: Vec<DegradedComponent>,
    /// Flight-recorder tail at capture time, oldest first (empty when the
    /// run had no recorder attached).
    pub flight: Vec<Event>,
    /// Sharded-run spec (`pipeline == Shard`).
    pub shard_config: Option<ShardRunSpec>,
}

// Deserialized by hand so bundles written before the `flight` and
// `shard_config` fields existed (still format version 1 — both
// additions are purely additive) load with empty defaults instead of
// failing on the missing keys.
impl<'de> Deserialize<'de> for ReproBundle {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ReproBundle {
            version: Deserialize::from_value(v.field("version")?)?,
            pipeline: Deserialize::from_value(v.field("pipeline")?)?,
            graph: Deserialize::from_value(v.field("graph")?)?,
            rand_config: Deserialize::from_value(v.field("rand_config")?)?,
            det_config: Deserialize::from_value(v.field("det_config")?)?,
            faults: Deserialize::from_value(v.field("faults")?)?,
            chaos: Deserialize::from_value(v.field("chaos")?)?,
            degrade: Deserialize::from_value(v.field("degrade")?)?,
            cursor: Deserialize::from_value(v.field("cursor")?)?,
            error: Deserialize::from_value(v.field("error")?)?,
            violations: Deserialize::from_value(v.field("violations")?)?,
            degraded: Deserialize::from_value(v.field("degraded")?)?,
            flight: match v.field("flight") {
                Ok(f) => Deserialize::from_value(f)?,
                Err(_) => Vec::new(),
            },
            shard_config: match v.field("shard_config") {
                Ok(f) => Deserialize::from_value(f)?,
                Err(_) => None,
            },
        })
    }
}

/// Builds a [`ReproBundle`] capturing one failed sharded chaos case —
/// the `delta-color soak` campaign's unit of capture. `cursor` becomes
/// the bundle filename stem (e.g. `soak-017`), `error` the verdict
/// string [`crate::shard::run_shard_case`] produced.
#[must_use]
pub fn shard_bundle(
    graph: &Graph,
    spec: &ShardRunSpec,
    faults: Option<&FaultPlan>,
    error: String,
    cursor: Option<String>,
) -> ReproBundle {
    ReproBundle {
        version: BUNDLE_VERSION,
        pipeline: PipelineKind::Shard,
        graph: graph.clone(),
        rand_config: None,
        det_config: None,
        faults: faults.cloned(),
        chaos: ChaosPlan::default(),
        degrade: false,
        cursor,
        error,
        violations: Vec::new(),
        degraded: Vec::new(),
        flight: Vec::new(),
        shard_config: Some(spec.clone()),
    }
}

/// A failed supervised run, as surfaced by [`RunOutcome::Failed`].
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The error that ended the run.
    pub error: String,
    /// Rendered violations from the final validation sweep.
    pub violations: Vec<String>,
    /// Last phase completed before the failure, if any.
    pub cursor: Option<PhaseCursor>,
    /// Where the repro bundle was written, when `bundle_dir` was set.
    pub bundle: Option<PathBuf>,
    /// Components degraded before the failure.
    pub degraded: Vec<DegradedComponent>,
}

/// Outcome of a supervised run.
#[derive(Debug, Clone)]
pub enum RunOutcome<R> {
    /// The run finished with a complete, validated coloring.
    Complete {
        /// The pipeline report.
        report: R,
        /// Components degraded to the baseline (empty unless `degrade`
        /// containment fired).
        degraded: Vec<DegradedComponent>,
    },
    /// `stop_after` fired: the run checkpointed and stopped.
    Suspended {
        /// The boundary the run stopped at.
        cursor: PhaseCursor,
        /// The snapshot to resume from.
        snapshot: PathBuf,
    },
    /// The run failed and the supervisor captured it.
    Failed(FailureReport),
}

impl<R> RunOutcome<R> {
    /// The completed report, if this outcome is `Complete`.
    pub fn into_report(self) -> Option<R> {
        match self {
            RunOutcome::Complete { report, .. } => Some(report),
            _ => None,
        }
    }
}

/// Outcome of [`replay_bundle`].
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Whether the replay reproduced the recorded failure: same error and
    /// same violation list.
    pub reproduced: bool,
    /// Error recorded in the bundle.
    pub recorded_error: String,
    /// Error observed by the replay (`None` = the replay succeeded).
    pub observed_error: Option<String>,
    /// Violations recorded in the bundle.
    pub recorded_violations: Vec<String>,
    /// Violations observed by the replay.
    pub observed_violations: Vec<String>,
}

/// FNV-1a digest of the graph: vertex count followed by the sorted edge
/// list. Cheap, stable across platforms, and collision-resistant enough
/// to catch "resumed on the wrong graph" mistakes.
pub fn graph_digest(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(g.n() as u64);
    for (u, v) in g.edges() {
        mix(u64::from(u.0));
        mix(u64::from(v.0));
    }
    h
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> DeltaColoringError {
    DeltaColoringError::Supervisor(format!("{what} {}: {e}", path.display()))
}

/// Writes `snap` atomically into `dir` as
/// `checkpoint-<ordinal>-<slug>.json`, returning the final path.
///
/// # Errors
///
/// [`DeltaColoringError::Supervisor`] on I/O failure.
pub fn save_snapshot(dir: &Path, snap: &Snapshot) -> Result<PathBuf, DeltaColoringError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("creating checkpoint dir", dir, &e))?;
    let name = format!(
        "checkpoint-{:02}-{}.json",
        snap.cursor.ordinal(),
        snap.cursor.slug()
    );
    let path = dir.join(name);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json::to_string(snap))
        .map_err(|e| io_err("writing snapshot", &tmp, &e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_err("publishing snapshot", &path, &e))?;
    Ok(path)
}

/// Loads a [`Snapshot`] previously written by [`save_snapshot`].
///
/// # Errors
///
/// [`DeltaColoringError::Supervisor`] on I/O failure, a parse error, or a
/// version mismatch.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, DeltaColoringError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err("reading snapshot", path, &e))?;
    let snap: Snapshot = json::from_str(&text).map_err(|e| {
        DeltaColoringError::Supervisor(format!("parsing snapshot {}: {e}", path.display()))
    })?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(DeltaColoringError::Supervisor(format!(
            "snapshot {} has format version {}, this build reads version {SNAPSHOT_VERSION}",
            path.display(),
            snap.version
        )));
    }
    Ok(snap)
}

/// Writes a [`ReproBundle`] into `dir` as `bundle-<slug-or-start>.json`.
///
/// # Errors
///
/// [`DeltaColoringError::Supervisor`] on I/O failure.
pub fn save_bundle(dir: &Path, bundle: &ReproBundle) -> Result<PathBuf, DeltaColoringError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("creating bundle dir", dir, &e))?;
    let stage = bundle.cursor.as_deref().unwrap_or("start");
    let path = dir.join(format!("bundle-after-{stage}.json"));
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json::to_string(bundle))
        .map_err(|e| io_err("writing bundle", &tmp, &e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_err("publishing bundle", &path, &e))?;
    Ok(path)
}

/// Loads a [`ReproBundle`] previously written by [`save_bundle`].
///
/// # Errors
///
/// [`DeltaColoringError::Supervisor`] on I/O failure, a parse error, or a
/// version mismatch.
pub fn load_bundle(path: &Path) -> Result<ReproBundle, DeltaColoringError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err("reading bundle", path, &e))?;
    let bundle: ReproBundle = json::from_str(&text).map_err(|e| {
        DeltaColoringError::Supervisor(format!("parsing bundle {}: {e}", path.display()))
    })?;
    if bundle.version != BUNDLE_VERSION {
        return Err(DeltaColoringError::Supervisor(format!(
            "bundle {} has format version {}, this build reads version {BUNDLE_VERSION}",
            path.display(),
            bundle.version
        )));
    }
    Ok(bundle)
}

fn check_snapshot(
    snap: &Snapshot,
    g: &Graph,
    expected: PipelineKind,
) -> Result<(), DeltaColoringError> {
    if snap.pipeline != expected {
        return Err(DeltaColoringError::Supervisor(format!(
            "snapshot was written by the {:?} pipeline, resuming the {expected:?} pipeline",
            snap.pipeline
        )));
    }
    let digest = graph_digest(g);
    if snap.graph_digest != digest {
        return Err(DeltaColoringError::Supervisor(format!(
            "snapshot graph digest {:#018x} (n={}, m={}) does not match this graph's \
             {digest:#018x} (n={}, m={}); resume on the exact graph the run started with",
            snap.graph_digest,
            snap.n,
            snap.m,
            g.n(),
            g.m()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Randomized driver.
// ---------------------------------------------------------------------

struct RandRunState {
    coloring: Coloring,
    ledger: RoundLedger,
    shatter: ShatterStats,
    recovery: RecoveryStats,
    slack_vertices: Vec<NodeId>,
    ring: Vec<Option<usize>>,
    degraded: Vec<DegradedComponent>,
}

/// Runs the randomized pipeline under `sup`, optionally resuming from a
/// snapshot. With [`Supervisor::passive`] and no resume this is exactly
/// [`crate::color_randomized_with_faults`].
///
/// # Errors
///
/// As [`crate::color_randomized`], plus [`DeltaColoringError::Supervisor`]
/// for checkpoint I/O and snapshot-validation failures. When
/// [`Supervisor::captures_failures`] is set, run errors surface as
/// [`RunOutcome::Failed`] instead.
pub fn drive_randomized(
    g: &Graph,
    config: &RandConfig,
    faults: Option<&FaultPlan>,
    probe: &Probe,
    sup: &Supervisor,
    resume: Option<Snapshot>,
) -> Result<RunOutcome<RandReport>, DeltaColoringError> {
    sup.validate()?;
    let delta = g.max_degree();
    if delta < 4 {
        return Err(DeltaColoringError::UnsupportedStructure(format!(
            "maximum degree {delta} is below the supported minimum of 4"
        )));
    }
    if let Some(th) = config.large_delta_threshold {
        if delta >= th {
            if resume.is_some() {
                return Err(DeltaColoringError::Supervisor(
                    "the large-Δ branch has no phase boundaries and cannot resume".to_string(),
                ));
            }
            let report = color_large_delta(g, config, probe)?;
            return Ok(RunOutcome::Complete {
                report,
                degraded: Vec::new(),
            });
        }
    }

    let mut resume_cursor = None;
    let restore_start = Instant::now();
    let mut st = match resume {
        Some(snap) => {
            check_snapshot(&snap, g, PipelineKind::Randomized)?;
            let rs = snap.rand.ok_or_else(|| {
                DeltaColoringError::Supervisor(
                    "randomized snapshot is missing its pipeline state".to_string(),
                )
            })?;
            if rs.config != *config {
                return Err(DeltaColoringError::Supervisor(
                    "snapshot configuration differs from the resume configuration; \
                     resume with the snapshot's own config"
                        .to_string(),
                ));
            }
            if snap.faults != faults.cloned() {
                return Err(DeltaColoringError::Supervisor(
                    "snapshot fault plan differs from the resume fault plan".to_string(),
                ));
            }
            resume_cursor = Some(snap.cursor);
            let mut ledger = snap.ledger;
            ledger.set_probe(probe.clone());
            RandRunState {
                coloring: snap.coloring,
                ledger,
                shatter: rs.shatter,
                recovery: rs.recovery,
                slack_vertices: rs.slack_vertices,
                ring: rs.ring,
                degraded: rs.degraded,
            }
        }
        None => RandRunState {
            coloring: Coloring::empty(g.n()),
            ledger: RoundLedger::with_probe(probe.clone()),
            shatter: ShatterStats::default(),
            recovery: RecoveryStats::default(),
            slack_vertices: Vec::new(),
            ring: Vec::new(),
            degraded: Vec::new(),
        },
    };
    record_resume_metrics(probe, resume_cursor.is_some(), restore_start);

    let mut last_done = resume_cursor;
    let flow = run_randomized_phases(
        g,
        config,
        faults,
        probe,
        sup,
        &mut st,
        resume_cursor,
        &mut last_done,
    );
    match flow {
        Ok(Some((cursor, snapshot))) => Ok(RunOutcome::Suspended { cursor, snapshot }),
        Ok(None) => Ok(RunOutcome::Complete {
            report: RandReport {
                coloring: st.coloring,
                ledger: st.ledger,
                shatter: st.shatter,
                recovery: st.recovery,
            },
            degraded: st.degraded,
        }),
        Err(e) if sup.captures_failures() => {
            // The run is over; make sure everything buffered (trace file,
            // fanned-out sinks) reaches disk before the bundle is built.
            probe.flush();
            let violations: Vec<String> =
                crate::validate::check_coloring(g, &st.coloring, delta as u32)
                    .iter()
                    .map(ToString::to_string)
                    .collect();
            let bundle = ReproBundle {
                version: BUNDLE_VERSION,
                pipeline: PipelineKind::Randomized,
                graph: g.clone(),
                rand_config: Some(*config),
                det_config: None,
                faults: faults.cloned(),
                chaos: sup.chaos.clone(),
                degrade: sup.degrade,
                cursor: last_done.map(|c| c.slug().to_string()),
                error: e.to_string(),
                violations: violations.clone(),
                degraded: st.degraded.clone(),
                flight: sup.flight_tail(),
                shard_config: None,
            };
            let path = match &sup.bundle_dir {
                Some(dir) => Some(save_bundle(dir, &bundle)?),
                None => None,
            };
            Ok(RunOutcome::Failed(FailureReport {
                error: e.to_string(),
                violations,
                cursor: last_done,
                bundle: path,
                degraded: st.degraded,
            }))
        }
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_randomized_phases(
    g: &Graph,
    config: &RandConfig,
    faults: Option<&FaultPlan>,
    probe: &Probe,
    sup: &Supervisor,
    st: &mut RandRunState,
    resume_cursor: Option<PhaseCursor>,
    last_done: &mut Option<PhaseCursor>,
) -> Result<Option<(PhaseCursor, PathBuf)>, DeltaColoringError> {
    use PhaseCursor as Pc;
    let delta = g.max_degree();
    let replay = |c: Pc| resume_cursor.is_some_and(|rc| c.ordinal() <= rc.ordinal());
    macro_rules! boundary {
        ($cursor:expr) => {{
            *last_done = Some($cursor);
            if let Some(stop) = rand_boundary($cursor, g, config, faults, probe, sup, st)? {
                return Ok(Some(stop));
            }
        }};
    }

    // ACD + classification: pure functions of (g, config), recomputed on
    // every resume — silently (scratch ledger, disabled probe) when the
    // snapshot already accounts for them.
    let acd = if replay(Pc::Acd) {
        det_phase_acd(g, &config.base, &mut RoundLedger::new())?
    } else {
        let acd = det_phase_acd(g, &config.base, &mut st.ledger)?;
        boundary!(Pc::Acd);
        acd
    };
    let (loopholes, cls) = if replay(Pc::Classification) {
        det_phase_classification(g, &acd, &mut RoundLedger::new())?
    } else {
        let out = det_phase_classification(g, &acd, &mut st.ledger)?;
        boundary!(Pc::Classification);
        out
    };

    // Pre-shattering consumes the run's randomness; it is never replayed —
    // its outputs (pair colors, slack vertices, rings) live in the
    // snapshot.
    if !replay(Pc::PreShattering) {
        let (slack, ring) = rand_phase_preshatter(
            g,
            config,
            &acd,
            &cls,
            &mut st.coloring,
            &mut st.ledger,
            &mut st.shatter,
        );
        st.slack_vertices = slack;
        st.ring = ring;
        boundary!(Pc::PreShattering);
    }

    if !replay(Pc::PostShattering) {
        rand_phase_postshatter(
            g,
            config,
            &acd,
            &cls,
            faults,
            sup,
            &st.ring,
            &mut st.coloring,
            &mut st.ledger,
            &mut st.shatter,
            &mut st.recovery,
            &mut st.degraded,
        )?;
        boundary!(Pc::PostShattering);
    }

    if !replay(Pc::PostProcessing) {
        rand_phase_postprocess(
            g,
            config,
            &st.slack_vertices,
            &st.ring,
            &mut st.coloring,
            &mut st.ledger,
        )?;
        boundary!(Pc::PostProcessing);
    }

    // The easy sweep is the final step of every run: always live.
    rand_phase_easy(g, config, &loopholes, &mut st.coloring, &mut st.ledger)?;

    st.coloring
        .check_complete(g, delta as u32)
        .map_err(|e| DeltaColoringError::InvariantViolated(format!("final coloring: {e}")))?;
    Ok(None)
}

fn rand_boundary(
    cursor: PhaseCursor,
    g: &Graph,
    config: &RandConfig,
    faults: Option<&FaultPlan>,
    probe: &Probe,
    sup: &Supervisor,
    st: &RandRunState,
) -> Result<Option<(PhaseCursor, PathBuf)>, DeltaColoringError> {
    let Some(dir) = &sup.checkpoint_dir else {
        return Ok(None);
    };
    let snap = Snapshot {
        version: SNAPSHOT_VERSION,
        pipeline: PipelineKind::Randomized,
        graph_digest: graph_digest(g),
        n: g.n(),
        m: g.m(),
        cursor,
        coloring: st.coloring.clone(),
        ledger: st.ledger.clone(),
        faults: faults.cloned(),
        rand: Some(RandSnapshot {
            config: *config,
            shatter: st.shatter.clone(),
            recovery: st.recovery,
            slack_vertices: st.slack_vertices.clone(),
            ring: st.ring.clone(),
            degraded: st.degraded.clone(),
        }),
        det: None,
    };
    let write_start = Instant::now();
    let path = save_snapshot(dir, &snap)?;
    record_checkpoint_metrics(probe, write_start);
    probe.emit_with(|| Event::Checkpoint {
        cursor: cursor.slug().to_string(),
        rounds: st.ledger.total(),
    });
    // Phase boundaries are the durability points of a supervised run: a
    // kill after this line must find the trace as complete as the
    // snapshot.
    probe.flush();
    if sup.stop_after == Some(cursor) {
        return Ok(Some((cursor, path)));
    }
    Ok(None)
}

/// Records one checkpoint write into the probe's metrics hub.
fn record_checkpoint_metrics(probe: &Probe, write_start: Instant) {
    if let Some(hub) = probe.metrics() {
        hub.counter("supervisor.checkpoints").incr();
        hub.histogram("supervisor.checkpoint_write_ns")
            .observe(u64::try_from(write_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Records a snapshot restore (validation + state reattachment) into the
/// probe's metrics hub. No-op for fresh (non-resumed) runs.
fn record_resume_metrics(probe: &Probe, resumed: bool, restore_start: Instant) {
    if !resumed {
        return;
    }
    if let Some(hub) = probe.metrics() {
        hub.counter("supervisor.resumes").incr();
        hub.histogram("supervisor.resume_restore_ns")
            .observe(u64::try_from(restore_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

// ---------------------------------------------------------------------
// Deterministic driver.
// ---------------------------------------------------------------------

struct DetRunState {
    coloring: Coloring,
    ledger: RoundLedger,
    stats: PipelineStats,
}

/// Runs the deterministic pipeline under `sup`, optionally resuming from
/// a snapshot. With [`Supervisor::passive`] and no resume this is exactly
/// [`crate::color_deterministic_probed`].
///
/// # Errors
///
/// As [`crate::color_deterministic`], plus
/// [`DeltaColoringError::Supervisor`] for checkpoint I/O and
/// snapshot-validation failures. When [`Supervisor::captures_failures`]
/// is set, run errors surface as [`RunOutcome::Failed`] instead.
pub fn drive_deterministic(
    g: &Graph,
    config: &Config,
    probe: &Probe,
    sup: &Supervisor,
    resume: Option<Snapshot>,
) -> Result<RunOutcome<Report>, DeltaColoringError> {
    sup.validate()?;
    let delta = g.max_degree();
    if delta < 4 {
        return Err(DeltaColoringError::UnsupportedStructure(format!(
            "maximum degree {delta} is below the supported minimum of 4"
        )));
    }

    let mut resume_cursor = None;
    let restore_start = Instant::now();
    let mut st = match resume {
        Some(snap) => {
            check_snapshot(&snap, g, PipelineKind::Deterministic)?;
            let ds = snap.det.ok_or_else(|| {
                DeltaColoringError::Supervisor(
                    "deterministic snapshot is missing its pipeline state".to_string(),
                )
            })?;
            if ds.config != *config {
                return Err(DeltaColoringError::Supervisor(
                    "snapshot configuration differs from the resume configuration; \
                     resume with the snapshot's own config"
                        .to_string(),
                ));
            }
            resume_cursor = Some(snap.cursor);
            let mut ledger = snap.ledger;
            ledger.set_probe(probe.clone());
            DetRunState {
                coloring: snap.coloring,
                ledger,
                stats: ds.stats,
            }
        }
        None => DetRunState {
            coloring: Coloring::empty(g.n()),
            ledger: RoundLedger::with_probe(probe.clone()),
            stats: PipelineStats::default(),
        },
    };
    record_resume_metrics(probe, resume_cursor.is_some(), restore_start);

    let mut last_done = resume_cursor;
    let flow = run_deterministic_phases(
        g,
        config,
        probe,
        sup,
        &mut st,
        resume_cursor,
        &mut last_done,
    );
    match flow {
        Ok(Some((cursor, snapshot))) => Ok(RunOutcome::Suspended { cursor, snapshot }),
        Ok(None) => Ok(RunOutcome::Complete {
            report: Report {
                coloring: st.coloring,
                ledger: st.ledger,
                stats: st.stats,
            },
            degraded: Vec::new(),
        }),
        Err(e) if sup.captures_failures() => {
            probe.flush();
            let violations: Vec<String> =
                crate::validate::check_coloring(g, &st.coloring, delta as u32)
                    .iter()
                    .map(ToString::to_string)
                    .collect();
            let bundle = ReproBundle {
                version: BUNDLE_VERSION,
                pipeline: PipelineKind::Deterministic,
                graph: g.clone(),
                rand_config: None,
                det_config: Some(*config),
                faults: None,
                chaos: sup.chaos.clone(),
                degrade: sup.degrade,
                cursor: last_done.map(|c| c.slug().to_string()),
                error: e.to_string(),
                violations: violations.clone(),
                degraded: Vec::new(),
                flight: sup.flight_tail(),
                shard_config: None,
            };
            let path = match &sup.bundle_dir {
                Some(dir) => Some(save_bundle(dir, &bundle)?),
                None => None,
            };
            Ok(RunOutcome::Failed(FailureReport {
                error: e.to_string(),
                violations,
                cursor: last_done,
                bundle: path,
                degraded: Vec::new(),
            }))
        }
        Err(e) => Err(e),
    }
}

fn run_deterministic_phases(
    g: &Graph,
    config: &Config,
    probe: &Probe,
    sup: &Supervisor,
    st: &mut DetRunState,
    resume_cursor: Option<PhaseCursor>,
    last_done: &mut Option<PhaseCursor>,
) -> Result<Option<(PhaseCursor, PathBuf)>, DeltaColoringError> {
    use PhaseCursor as Pc;
    let delta = g.max_degree();
    let replay = |c: Pc| resume_cursor.is_some_and(|rc| c.ordinal() <= rc.ordinal());
    macro_rules! boundary {
        ($cursor:expr) => {{
            *last_done = Some($cursor);
            if let Some(stop) = det_boundary($cursor, g, config, probe, sup, st)? {
                return Ok(Some(stop));
            }
        }};
    }

    let acd = if replay(Pc::Acd) {
        det_phase_acd(g, config, &mut RoundLedger::new())?
    } else {
        let acd = det_phase_acd(g, config, &mut st.ledger)?;
        boundary!(Pc::Acd);
        acd
    };
    let (loopholes, cls) = if replay(Pc::Classification) {
        det_phase_classification(g, &acd, &mut RoundLedger::new())?
    } else {
        let out = det_phase_classification(g, &acd, &mut st.ledger)?;
        st.stats = PipelineStats {
            cliques: acd.cliques.len(),
            hard: out.1.hard_count(),
            heg: out.1.heg_ids.len(),
            loophole_vertices: out.0.count(),
            ..PipelineStats::default()
        };
        boundary!(Pc::Classification);
        out
    };

    if !cls.hard_ids.is_empty() {
        let f2 = if replay(Pc::Phase1) {
            det_phase1(g, &acd, &cls, config, false, &mut RoundLedger::new())?
        } else {
            let f2 = det_phase1(g, &acd, &cls, config, false, &mut st.ledger)?;
            st.stats.phase1 = f2.stats.clone();
            boundary!(Pc::Phase1);
            f2
        };
        let f3 = if replay(Pc::Phase2) {
            det_phase2(g, &acd, &cls, &f2, config, &mut RoundLedger::new())?
        } else {
            let f3 = det_phase2(g, &acd, &cls, &f2, config, &mut st.ledger)?;
            st.stats.max_incoming = f3.incoming.iter().copied().max().unwrap_or(0);
            st.stats.incoming_bound = f3.incoming_bound;
            boundary!(Pc::Phase2);
            f3
        };
        let triads = if replay(Pc::Phase3) {
            det_phase3(g, &acd, &f3, &mut RoundLedger::new())?
        } else {
            let triads = det_phase3(g, &acd, &f3, &mut st.ledger)?;
            boundary!(Pc::Phase3);
            triads
        };
        if !replay(Pc::Phase4) {
            let pair_palette: Vec<Color> = (0..delta as u32).map(Color).collect();
            st.stats.phase4 = det_phase4(
                g,
                &acd,
                &cls,
                &triads,
                &pair_palette,
                &mut st.coloring,
                config,
                &mut st.ledger,
            )?;
            boundary!(Pc::Phase4);
        }
    }

    det_phase_easy(
        g,
        config,
        &loopholes,
        &mut st.coloring,
        &mut st.ledger,
        &mut st.stats,
    )?;

    st.coloring
        .check_complete(g, delta as u32)
        .map_err(|e| DeltaColoringError::InvariantViolated(format!("final coloring: {e}")))?;
    Ok(None)
}

fn det_boundary(
    cursor: PhaseCursor,
    g: &Graph,
    config: &Config,
    probe: &Probe,
    sup: &Supervisor,
    st: &DetRunState,
) -> Result<Option<(PhaseCursor, PathBuf)>, DeltaColoringError> {
    let Some(dir) = &sup.checkpoint_dir else {
        return Ok(None);
    };
    let snap = Snapshot {
        version: SNAPSHOT_VERSION,
        pipeline: PipelineKind::Deterministic,
        graph_digest: graph_digest(g),
        n: g.n(),
        m: g.m(),
        cursor,
        coloring: st.coloring.clone(),
        ledger: st.ledger.clone(),
        faults: None,
        rand: None,
        det: Some(DetSnapshot {
            config: *config,
            stats: st.stats.clone(),
        }),
    };
    let write_start = Instant::now();
    let path = save_snapshot(dir, &snap)?;
    record_checkpoint_metrics(probe, write_start);
    probe.emit_with(|| Event::Checkpoint {
        cursor: cursor.slug().to_string(),
        rounds: st.ledger.total(),
    });
    probe.flush();
    if sup.stop_after == Some(cursor) {
        return Ok(Some((cursor, path)));
    }
    Ok(None)
}

// ---------------------------------------------------------------------
// Bundle replay.
// ---------------------------------------------------------------------

/// Re-executes a [`ReproBundle`] deterministically and compares the
/// observed failure against the recorded one.
///
/// # Errors
///
/// [`DeltaColoringError::Supervisor`] when the bundle cannot be read or
/// parsed. A replay whose run *succeeds* is not an error — it returns
/// `reproduced: false`.
pub fn replay_bundle(path: &Path, probe: &Probe) -> Result<ReplayReport, DeltaColoringError> {
    let bundle = load_bundle(path)?;
    let sup = Supervisor {
        capture_failures: true,
        degrade: bundle.degrade,
        chaos: bundle.chaos.clone(),
        ..Supervisor::passive()
    };
    let (observed_error, observed_violations) = match bundle.pipeline {
        PipelineKind::Randomized => {
            let config = bundle.rand_config.ok_or_else(|| {
                DeltaColoringError::Supervisor(
                    "randomized bundle is missing its configuration".to_string(),
                )
            })?;
            match drive_randomized(
                &bundle.graph,
                &config,
                bundle.faults.as_ref(),
                probe,
                &sup,
                None,
            )? {
                RunOutcome::Failed(f) => (Some(f.error), f.violations),
                _ => (None, Vec::new()),
            }
        }
        PipelineKind::Deterministic => {
            let config = bundle.det_config.ok_or_else(|| {
                DeltaColoringError::Supervisor(
                    "deterministic bundle is missing its configuration".to_string(),
                )
            })?;
            match drive_deterministic(&bundle.graph, &config, probe, &sup, None)? {
                RunOutcome::Failed(f) => (Some(f.error), f.violations),
                _ => (None, Vec::new()),
            }
        }
        PipelineKind::Shard => {
            let spec = bundle.shard_config.as_ref().ok_or_else(|| {
                DeltaColoringError::Supervisor("shard bundle is missing its run spec".to_string())
            })?;
            // `run_shard_case` owns the comparison against the reference
            // run; its verdict string is the replay's observed error.
            (
                run_shard_case(&bundle.graph, spec, bundle.faults.as_ref()),
                Vec::new(),
            )
        }
    };
    let reproduced = observed_error.as_deref() == Some(bundle.error.as_str())
        && observed_violations == bundle.violations;
    Ok(ReplayReport {
        reproduced,
        recorded_error: bundle.error,
        observed_error,
        recorded_violations: bundle.violations,
        observed_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn cursor_slugs_round_trip() {
        for c in PhaseCursor::ALL {
            assert_eq!(c.slug().parse::<PhaseCursor>().unwrap(), c);
            let v = c.to_value();
            assert_eq!(PhaseCursor::from_value(&v).unwrap(), c);
        }
        assert!("phase9".parse::<PhaseCursor>().is_err());
    }

    #[test]
    fn cursor_ordinals_follow_pipeline_order() {
        assert!(PhaseCursor::Acd.ordinal() < PhaseCursor::Classification.ordinal());
        assert!(PhaseCursor::Classification.ordinal() < PhaseCursor::Phase1.ordinal());
        assert!(PhaseCursor::Phase4.ordinal() < PhaseCursor::PreShattering.ordinal());
        assert!(PhaseCursor::PreShattering.ordinal() < PhaseCursor::PostShattering.ordinal());
        assert!(PhaseCursor::PostShattering.ordinal() < PhaseCursor::PostProcessing.ordinal());
    }

    #[test]
    fn digest_distinguishes_graphs() {
        let a = generators::complete(6);
        let b = generators::complete(7);
        let c = generators::cycle(6);
        assert_ne!(graph_digest(&a), graph_digest(&b));
        assert_ne!(graph_digest(&a), graph_digest(&c));
        assert_eq!(graph_digest(&a), graph_digest(&generators::complete(6)));
    }

    #[test]
    fn shard_bundles_round_trip_and_replay() {
        let g = generators::gnp(24, 0.2, 3);
        let mut spec = ShardRunSpec::new(2, &localsim::WireAlgo::Greedy);
        spec.kills = vec![(1, 1)];
        let dir = std::env::temp_dir().join(format!("shard-bundle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bundle = shard_bundle(
            &g,
            &spec,
            None,
            "synthetic failure".to_string(),
            Some("soak-000".to_string()),
        );
        let path = save_bundle(&dir, &bundle).unwrap();
        assert!(path.ends_with("bundle-after-soak-000.json"));
        let loaded = load_bundle(&path).unwrap();
        assert_eq!(loaded.pipeline, PipelineKind::Shard);
        assert_eq!(loaded.shard_config, Some(spec));
        // The captured case is actually healthy, so the replay observes
        // no divergence and reports the failure as not reproduced.
        let rep = replay_bundle(&path, &Probe::disabled()).unwrap();
        assert!(!rep.reproduced);
        assert_eq!(rep.observed_error, None);
        assert_eq!(rep.recorded_error, "synthetic failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_after_requires_checkpoint_dir() {
        let sup = Supervisor {
            stop_after: Some(PhaseCursor::Acd),
            ..Supervisor::passive()
        };
        let g = generators::complete(6);
        let err = drive_deterministic(&g, &Config::for_delta(5), &Probe::disabled(), &sup, None)
            .unwrap_err();
        assert!(matches!(err, DeltaColoringError::Supervisor(_)));
    }
}
