//! Hard/easy almost-clique classification (Definition 8) and the Lemma 9
//! structure checks.

use acd::AcdResult;
use graphgen::{Graph, NodeId};

use crate::error::DeltaColoringError;
use crate::loophole::LoopholeReport;

/// Kind of an almost-clique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliqueKind {
    /// Contains no vertex of any ≤6-vertex loophole; satisfies Lemma 9.
    Hard,
    /// Touches a loophole; colored by Algorithm 3.
    Easy,
}

/// The classification of an ACD into hard and easy cliques.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Kind per almost-clique (indexed like `acd.cliques`).
    pub kinds: Vec<CliqueKind>,
    /// Ids of hard cliques.
    pub hard_ids: Vec<u32>,
    /// Ids of hard cliques in `C_HEG`: every member has at least one
    /// external neighbor inside a hard clique.
    pub heg_ids: Vec<u32>,
    /// Per-vertex flag: lies in a hard clique.
    pub is_hard_vertex: Vec<bool>,
    /// LOCAL rounds charged (constant-radius checks).
    pub rounds: u64,
}

impl Classification {
    /// Number of hard cliques.
    pub fn hard_count(&self) -> usize {
        self.hard_ids.len()
    }
}

/// Classifies every almost-clique as hard or easy and verifies Lemma 9 on
/// the hard ones.
///
/// # Errors
///
/// Returns [`DeltaColoringError::UnsupportedStructure`] if a clique
/// contains no detected loophole yet fails Lemma 9's structure (the paper
/// proves this cannot happen for true ≤6-loophole-free cliques, so it
/// indicates an input outside the algorithm's assumptions, or a detector
/// gap), and [`DeltaColoringError::ContainsMaxClique`] if a clique on
/// `Δ + 1` vertices is found.
pub fn classify_cliques(
    g: &Graph,
    acd: &AcdResult,
    loopholes: &LoopholeReport,
) -> Result<Classification, DeltaColoringError> {
    let delta = g.max_degree();
    let mut kinds = Vec::with_capacity(acd.cliques.len());
    let mut hard_ids = Vec::new();
    let mut is_hard_vertex = vec![false; g.n()];

    for c in &acd.cliques {
        let easy = c.vertices.iter().any(|&v| loopholes.is_loophole_vertex(v));
        if easy {
            kinds.push(CliqueKind::Easy);
            continue;
        }
        verify_lemma9(g, acd, c.id, &c.vertices, delta)?;
        kinds.push(CliqueKind::Hard);
        hard_ids.push(c.id);
        for &v in &c.vertices {
            is_hard_vertex[v.index()] = true;
        }
    }

    // C_HEG: hard cliques where every member has an external hard neighbor.
    let mut heg_ids = Vec::new();
    for &cid in &hard_ids {
        let all_have = acd.cliques[cid as usize].vertices.iter().all(|&v| {
            g.neighbors(v)
                .iter()
                .any(|&w| is_hard_vertex[w.index()] && acd.clique_of[w.index()] != Some(cid))
        });
        if all_have {
            heg_ids.push(cid);
        }
    }

    Ok(Classification {
        kinds,
        hard_ids,
        heg_ids,
        is_hard_vertex,
        rounds: 2,
    })
}

/// Lemma 9 for a loophole-free clique: (1) it is a true clique, (2) every
/// member has exactly `Δ − |C| + 1` external neighbors, (3) no outside
/// vertex has two neighbors inside.
fn verify_lemma9(
    g: &Graph,
    acd: &AcdResult,
    cid: u32,
    vertices: &[NodeId],
    delta: usize,
) -> Result<(), DeltaColoringError> {
    if vertices.len() > delta {
        // A loophole-free clique of size Δ+1 would be K_{Δ+1}.
        if graphgen::analysis::is_clique(g, vertices) {
            return Err(DeltaColoringError::ContainsMaxClique);
        }
    }
    let e_c = delta + 1 - vertices.len();
    for (i, &u) in vertices.iter().enumerate() {
        for &w in &vertices[i + 1..] {
            if !g.has_edge(u, w) {
                return Err(DeltaColoringError::UnsupportedStructure(format!(
                    "clique {cid} misses edge {u}-{w} but has no detected loophole"
                )));
            }
        }
        let outside = g
            .neighbors(u)
            .iter()
            .filter(|w| acd.clique_of[w.index()] != Some(cid))
            .count();
        if outside != e_c {
            return Err(DeltaColoringError::UnsupportedStructure(format!(
                "vertex {u} of hard clique {cid} has {outside} external neighbors, expected {e_c}"
            )));
        }
    }
    // (3): outsiders with two neighbors inside.
    let mut seen: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    for &u in vertices {
        for &w in g.neighbors(u) {
            if acd.clique_of[w.index()] == Some(cid) {
                continue;
            }
            if let Some(prev) = seen.insert(w, u) {
                return Err(DeltaColoringError::UnsupportedStructure(format!(
                    "outside vertex {w} neighbors both {prev} and {u} in hard clique {cid}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loophole::detect_loopholes;
    use acd::{compute_acd, AcdParams};
    use graphgen::generators;

    fn classify(inst: &generators::HardCliqueInstance) -> (AcdResult, Classification) {
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(inst.delta));
        let rep = detect_loopholes(&inst.graph, &acd.clique_of);
        let cls = classify_cliques(&inst.graph, &acd, &rep).unwrap();
        (acd, cls)
    }

    #[test]
    fn pure_hard_instance_all_hard_all_heg() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 21,
        })
        .unwrap();
        let (_, cls) = classify(&inst);
        assert_eq!(cls.hard_count(), 34);
        assert_eq!(cls.heg_ids.len(), 34, "pure hard instances are all C_HEG");
        assert!(cls.is_hard_vertex.iter().all(|&b| b));
    }

    #[test]
    fn planted_easy_cliques_classified_easy() {
        let inst = generators::easy_cliques(&generators::EasyCliqueParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 22,
            },
            easy: 3,
            kind: generators::LoopholeKind::LowDegree,
        })
        .unwrap();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        let rep = detect_loopholes(&inst.graph, &acd.clique_of);
        let cls = classify_cliques(&inst.graph, &acd, &rep).unwrap();
        assert_eq!(cls.hard_count(), 31);
        // The ACD's clique ids may be permuted w.r.t. the generator's; match
        // via vertices.
        for &k in &inst.planted_easy {
            let v = inst.cliques[k][2]; // not an endpoint of the deleted edge
            let acd_id = acd.clique_of[v.index()].unwrap();
            assert_eq!(cls.kinds[acd_id as usize], CliqueKind::Easy);
        }
    }

    #[test]
    fn type_ii_cliques_leave_heg() {
        // With ext=1, hard cliques adjacent only to easy cliques via some
        // vertex drop out of C_HEG.
        let inst = generators::easy_cliques(&generators::EasyCliqueParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 23,
            },
            easy: 4,
            kind: generators::LoopholeKind::LowDegree,
        })
        .unwrap();
        let (_, cls) = classify(&inst);
        assert!(
            cls.heg_ids.len() < cls.hard_count(),
            "some hard clique must be Type II"
        );
    }

    #[test]
    fn max_clique_detected() {
        // K_9 with Δ = 8: a Δ+1 clique.
        let g = generators::complete(9);
        let acd = compute_acd(&g, &AcdParams::for_delta(8));
        let rep = detect_loopholes(&g, &acd.clique_of);
        let err = classify_cliques(&g, &acd, &rep).unwrap_err();
        assert_eq!(err, DeltaColoringError::ContainsMaxClique);
    }
}
