//! Scoped worker pool for pipeline-level parallelism.
//!
//! The pipelines contain stages made of *independent units* — leftover
//! components after shattering, selected loopholes in the easy sweep —
//! whose computations read only state no other unit writes. This module
//! runs such units across a scoped thread pool and returns the results
//! **in unit-index order**, so callers can merge colors, ledgers, and
//! telemetry deterministically: the observable outcome is bit-identical
//! at every thread count (pinned by `tests/pipeline_parallel.rs`).
//!
//! Thread-count semantics mirror the executors (`localsim`): `0` resolves
//! to [`localsim::default_threads`] (the `LOCALSIM_THREADS` / `--threads`
//! default), `1` runs inline on the calling thread, `k ≥ 2` spawns `k`
//! scoped workers pulling unit indices from a shared counter (dynamic
//! scheduling — component sizes are heavy-tailed, so static chunking
//! would idle workers).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a configured thread count: `0` means the process default.
pub(crate) fn effective_threads(configured: usize) -> usize {
    if configured == 0 {
        localsim::default_threads()
    } else {
        configured
    }
}

/// Runs `f(0), f(1), …, f(len - 1)` on up to `threads` scoped workers and
/// returns the results in index order.
pub(crate) fn run_indexed<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(threads, len, || (), |(), i| f(i))
}

/// [`run_indexed`] with per-worker scratch state: every worker calls
/// `init` once and threads the state through each unit it executes
/// (the component pool uses this for its snapshot colorings, so scratch
/// is allocated per *worker*, not per unit).
///
/// `f` must produce a result that depends only on the unit index — not
/// on which worker ran it or in what order (scratch must be returned to
/// its post-`init` state before `f` returns). Under that contract the
/// output vector is identical at every thread count.
///
/// # Panics
///
/// Propagates panics from `f` (the scope rejoins all workers first).
pub(crate) fn run_indexed_with<S, T, I, F>(threads: usize, len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let k = threads.clamp(1, len.max(1));
    if k <= 1 {
        let mut scratch = init();
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..k {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let out = f(&mut scratch, i);
                    *slots[i].lock().expect("pool slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order_at_every_thread_count() {
        for threads in [0, 1, 2, 4, 16] {
            let k = if threads == 0 { 1 } else { threads };
            let out = run_indexed(k, 10, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        // Each worker's scratch counts the units it ran; the sum over all
        // results must cover every unit exactly once.
        let out = run_indexed_with(
            4,
            100,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out.len(), 100);
        for (idx, (i, seen)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn empty_and_oversubscribed() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }
}
