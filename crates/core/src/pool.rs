//! Pipeline-level worker pool built on localsim's persistent
//! epoch-barrier pool.
//!
//! The pipelines contain stages made of *independent units* — leftover
//! components after shattering, selected loopholes in the easy sweep —
//! whose computations read only state no other unit writes. This module
//! runs such units across a worker pool and returns the results
//! **in unit-index order**, so callers can merge colors, ledgers, and
//! telemetry deterministically: the observable outcome is bit-identical
//! at every thread count (pinned by `tests/pipeline_parallel.rs`).
//!
//! Thread-count semantics mirror the executors (`localsim`): `0` resolves
//! to [`localsim::default_threads`] (the `LOCALSIM_THREADS` / `--threads`
//! default), `1` runs inline on the calling thread, `k ≥ 2` leases a
//! persistent [`localsim::WorkerPool`] of `k` slots — parked threads
//! reused across calls on the same pipeline thread, not respawned per
//! stage — whose workers pull unit indices from a shared counter
//! (dynamic scheduling — component sizes are heavy-tailed, so static
//! chunking would idle workers).
//!
//! With a [`MetricsHub`] attached the pool decomposes its wall-clock into
//! the quantities ROADMAP item 1 needs: per-worker busy/idle/merge lanes
//! (`MetricsHub::worker_lane`), worker wake-up latency (`pool.spawn_ns` —
//! time from epoch publish to each worker's first claim), and caller-side
//! result collection (`pool.merge_ns`). Steals are reported two ways:
//! cumulatively per lane, and per epoch in the
//! `pool.steals_per_epoch_sched` histogram (one observation per pool
//! call). Everything except the `_ns` timings, the lane table, and the
//! `_sched`-suffixed scheduling metrics stays deterministic at every
//! thread count.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use localsim::MetricsHub;

/// Resolves a configured thread count: `0` means the process default.
pub(crate) fn effective_threads(configured: usize) -> usize {
    if configured == 0 {
        localsim::default_threads()
    } else {
        configured
    }
}

/// Runs `f(0), f(1), …, f(len - 1)` on up to `threads` pool workers and
/// returns the results in index order, recording pool utilization into
/// `hub` when attached.
pub(crate) fn run_indexed_metered<T, F>(
    threads: usize,
    len: usize,
    hub: Option<&Arc<MetricsHub>>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with_metered(threads, len, hub, || (), |(), i| f(i))
}

/// [`run_indexed_metered`] with per-worker scratch state: every worker
/// calls `init` once and threads the state through each unit it executes
/// (the component pool uses this for its snapshot colorings, so scratch
/// is allocated per *worker*, not per unit).
///
/// `f` must produce a result that depends only on the unit index — not
/// on which worker ran it or in what order (scratch must be returned to
/// its post-`init` state before `f` returns). Under that contract the
/// output vector is identical at every thread count.
///
/// With `hub` attached the call records `pool.calls` / `pool.units`
/// counters, the `pool.call_ns` histogram, worker wake-up latency, the
/// per-epoch `pool.steals_per_epoch_sched` histogram, caller-side merge
/// time, and one busy/idle/merge lane per worker slot; with `hub`
/// absent the original unmetered loops run — no `Instant::now` calls on
/// any path.
///
/// # Panics
///
/// Propagates panics from `f` (the epoch barrier rejoins all workers
/// first).
pub(crate) fn run_indexed_with_metered<S, T, I, F>(
    threads: usize,
    len: usize,
    hub: Option<&Arc<MetricsHub>>,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let k = threads.clamp(1, len.max(1));
    if let Some(hub) = hub {
        hub.counter("pool.calls").incr();
        hub.counter("pool.units").add(len as u64);
    }
    if k <= 1 {
        let mut scratch = init();
        if let Some(hub) = hub {
            let lane = hub.worker_lane(0);
            let start = Instant::now();
            let out: Vec<T> = (0..len).map(|i| f(&mut scratch, i)).collect();
            let busy = elapsed_ns(start);
            lane.busy_ns.fetch_add(busy, Ordering::Relaxed);
            lane.units.fetch_add(len as u64, Ordering::Relaxed);
            hub.histogram("pool.call_ns").observe(busy);
            return out;
        }
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let mut lease = localsim::pool_lease(k);
    match hub {
        None => {
            lease.run_epoch(&|_slot| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let out = f(&mut scratch, i);
                    *slots[i].lock().expect("pool slot poisoned") = Some(out);
                }
            });
        }
        Some(hub) => {
            let call_start = Instant::now();
            // A worker's fair share; anything claimed beyond it was
            // "stolen" from slower workers by the dynamic scheduler.
            let fair_share = len.div_ceil(k) as u64;
            let epoch_steals = AtomicU64::new(0);
            lease.run_epoch(&|slot| {
                let lane = hub.worker_lane(slot);
                hub.counter("pool.spawn_ns").add(elapsed_ns(call_start));
                let mut scratch = init();
                let mut busy = 0u64;
                let mut idle = 0u64;
                let mut merge = 0u64;
                let mut claimed = 0u64;
                let mut prev = Instant::now();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let work_start = Instant::now();
                    idle += ns_between(prev, work_start);
                    let out = f(&mut scratch, i);
                    let work_end = Instant::now();
                    busy += ns_between(work_start, work_end);
                    *slots[i].lock().expect("pool slot poisoned") = Some(out);
                    prev = Instant::now();
                    merge += ns_between(work_end, prev);
                    claimed += 1;
                }
                let steals = claimed.saturating_sub(fair_share);
                lane.busy_ns.fetch_add(busy, Ordering::Relaxed);
                lane.idle_ns.fetch_add(idle, Ordering::Relaxed);
                lane.merge_ns.fetch_add(merge, Ordering::Relaxed);
                lane.units.fetch_add(claimed, Ordering::Relaxed);
                lane.steals.fetch_add(steals, Ordering::Relaxed);
                epoch_steals.fetch_add(steals, Ordering::Relaxed);
            });
            // Per-epoch steal reporting: one observation per pool call,
            // so the histogram's count/quantiles expose how skewed each
            // individual epoch was, not just the run total. The `_sched`
            // suffix keeps it out of `deterministic_snapshot()` —
            // which worker over-claims depends on OS scheduling.
            hub.histogram("pool.steals_per_epoch_sched")
                .observe(epoch_steals.load(Ordering::Relaxed));
            hub.histogram("pool.call_ns")
                .observe(elapsed_ns(call_start));
        }
    }
    drop(lease);
    let collect_start = hub.map(|_| Instant::now());
    let out: Vec<T> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect();
    if let (Some(hub), Some(start)) = (hub, collect_start) {
        hub.counter("pool.merge_ns").add(elapsed_ns(start));
    }
    out
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[inline]
fn ns_between(a: Instant, b: Instant) -> u64 {
    u64::try_from(b.saturating_duration_since(a).as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order_at_every_thread_count() {
        for threads in [0, 1, 2, 4, 16] {
            let k = if threads == 0 { 1 } else { threads };
            let out = run_indexed_metered(k, 10, None, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        // Each worker's scratch counts the units it ran; the sum over all
        // results must cover every unit exactly once.
        let out = run_indexed_with_metered(
            4,
            100,
            None,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out.len(), 100);
        for (idx, (i, seen)) in out.iter().enumerate() {
            assert_eq!(*i, idx);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn empty_and_oversubscribed() {
        assert!(run_indexed_metered(4, 0, None, |i| i).is_empty());
        assert_eq!(run_indexed_metered(64, 3, None, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn metered_results_match_and_units_account() {
        for threads in [1, 2, 4] {
            let hub = Arc::new(MetricsHub::new());
            let out = run_indexed_metered(threads, 50, Some(&hub), |i| i * 3);
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(hub.counter("pool.calls").get(), 1);
            assert_eq!(hub.counter("pool.units").get(), 50);
            let lanes = hub.worker_lanes();
            assert!(lanes.len() <= threads.max(1));
            let claimed: u64 = lanes.iter().map(|l| l.units).sum();
            assert_eq!(
                claimed, 50,
                "threads={threads}: every unit claimed exactly once"
            );
            assert_eq!(hub.histogram("pool.call_ns").count(), 1);
        }
    }

    #[test]
    fn metered_empty_call_is_safe() {
        let hub = Arc::new(MetricsHub::new());
        let out: Vec<usize> = run_indexed_metered(4, 0, Some(&hub), |i| i);
        assert!(out.is_empty());
        assert_eq!(hub.counter("pool.units").get(), 0);
    }

    #[test]
    fn steals_report_per_epoch_and_stay_out_of_deterministic_snapshot() {
        let hub = Arc::new(MetricsHub::new());
        // Three parallel calls = three epochs: the per-epoch histogram
        // must carry one observation per call, not a single cumulative
        // total.
        for _ in 0..3 {
            let _ = run_indexed_metered(4, 40, Some(&hub), |i| i);
        }
        assert_eq!(hub.histogram("pool.steals_per_epoch_sched").count(), 3);
        let det = serde::json::to_string(&hub.deterministic_snapshot());
        assert!(
            !det.contains("steals_per_epoch_sched"),
            "scheduling-dependent steal metrics must not leak into the \
             deterministic snapshot"
        );
        let full = serde::json::to_string(&hub.snapshot_value());
        assert!(full.contains("steals_per_epoch_sched"));
    }

    #[test]
    fn sequential_calls_record_no_epoch_steals() {
        let hub = Arc::new(MetricsHub::new());
        let _ = run_indexed_metered(1, 40, Some(&hub), |i| i);
        assert_eq!(hub.histogram("pool.steals_per_epoch_sched").count(), 0);
    }
}
