//! Textual (Graphviz DOT) renderers for the paper's structural figures.
//!
//! * Figure 2 — hard cliques with their slack triads: [`render_triads`].
//! * Figure 3 — the virtual conflict graph `G_V` of slack pairs:
//!   [`render_pair_graph`].
//! * Figure 4 — the `F1 → F2` edge flipping of the HEG phase:
//!   [`render_matching`].
//!
//! The output is self-contained DOT; render with
//! `dot -Tsvg figure.dot -o figure.svg`.

use std::fmt::Write as _;

use acd::AcdResult;
use graphgen::{Graph, NodeId};

use crate::phase1::BalancedMatching;
use crate::phase3::TriadSet;

fn clique_clusters(acd: &AcdResult, out: &mut String, highlight: impl Fn(NodeId) -> String) {
    for c in &acd.cliques {
        let _ = writeln!(out, "  subgraph cluster_{} {{", c.id);
        let _ = writeln!(out, "    label=\"C{}\"; style=rounded;", c.id);
        for &v in &c.vertices {
            let _ = writeln!(out, "    {} [{}];", v.0, highlight(v));
        }
        let _ = writeln!(out, "  }}");
    }
}

/// Figure 2: cliques as clusters, slack vertices checkered, slack pairs
/// boxed, pair/slack edges highlighted. Intra-clique edges are omitted for
/// legibility (every clique is complete).
pub fn render_triads(g: &Graph, acd: &AcdResult, triads: &TriadSet) -> String {
    let mut out = String::from("graph slack_triads {\n  node [shape=circle, fontsize=9];\n");
    let style = |v: NodeId| -> String {
        for t in &triads.triads {
            if t.slack == v {
                return "style=filled, fillcolor=gray70, shape=doublecircle".to_string();
            }
            if t.pair_in == v || t.pair_out == v {
                return "style=filled, fillcolor=orange, shape=box".to_string();
            }
        }
        "style=solid".to_string()
    };
    clique_clusters(acd, &mut out, style);
    // External edges, highlighting the triad edges.
    let triad_edges: std::collections::HashSet<(NodeId, NodeId)> = triads
        .triads
        .iter()
        .flat_map(|t| {
            [
                (t.slack.min(t.pair_out), t.slack.max(t.pair_out)),
                (t.slack.min(t.pair_in), t.slack.max(t.pair_in)),
            ]
        })
        .collect();
    for (u, v) in g.edges() {
        if acd.clique_of[u.index()] == acd.clique_of[v.index()] {
            continue;
        }
        let attr = if triad_edges.contains(&(u, v)) {
            " [color=orange, penwidth=2.5]"
        } else {
            " [color=gray80]"
        };
        let _ = writeln!(out, "  {} -- {}{};", u.0, v.0, attr);
    }
    // Same-color links between pair vertices (dashed).
    for t in &triads.triads {
        let _ = writeln!(
            out,
            "  {} -- {} [style=dashed, color=orange, constraint=false];",
            t.pair_in.0, t.pair_out.0
        );
    }
    out.push_str("}\n");
    out
}

/// Figure 3: the virtual graph `G_V` — one box per slack pair, an edge
/// whenever any of the underlying vertices are adjacent.
pub fn render_pair_graph(g: &Graph, triads: &TriadSet) -> String {
    let mut out = String::from(
        "graph pair_conflicts {\n  node [shape=box, style=filled, fillcolor=orange, fontsize=9];\n",
    );
    for (i, t) in triads.triads.iter().enumerate() {
        let _ = writeln!(
            out,
            "  p{} [label=\"{{{}, {}}}\"];",
            i, t.pair_in, t.pair_out
        );
    }
    let mut pair_of: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for (i, t) in triads.triads.iter().enumerate() {
        pair_of.insert(t.pair_in, i);
        pair_of.insert(t.pair_out, i);
    }
    let mut seen = std::collections::HashSet::new();
    for (&v, &i) in &pair_of {
        for &w in g.neighbors(v) {
            if let Some(&j) = pair_of.get(&w) {
                if i != j && seen.insert((i.min(j), i.max(j))) {
                    let _ = writeln!(out, "  p{} -- p{} [color=orange];", i.min(j), i.max(j));
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Figure 4: the balanced matching — cliques as clusters, oriented `F2`
/// edges in green.
pub fn render_matching(g: &Graph, acd: &AcdResult, f2: &BalancedMatching) -> String {
    let mut out = String::from("digraph balanced_matching {\n  node [shape=circle, fontsize=9];\n  edge [dir=none, color=gray80];\n");
    clique_clusters(acd, &mut out, |_| "style=solid".to_string());
    let f2_set: std::collections::HashSet<(NodeId, NodeId)> = f2.edges.iter().copied().collect();
    for (u, v) in g.edges() {
        if acd.clique_of[u.index()] == acd.clique_of[v.index()] {
            continue;
        }
        if f2_set.contains(&(u, v)) {
            let _ = writeln!(
                out,
                "  {} -> {} [dir=forward, color=green, penwidth=2.5];",
                u.0, v.0
            );
        } else if f2_set.contains(&(v, u)) {
            let _ = writeln!(
                out,
                "  {} -> {} [dir=forward, color=green, penwidth=2.5];",
                v.0, u.0
            );
        } else {
            let _ = writeln!(out, "  {} -> {};", u.0, v.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_cliques;
    use crate::deterministic::{Config, HegAlgo, MatchingAlgo};
    use crate::loophole::detect_loopholes;
    use crate::phase1::balanced_matching;
    use crate::phase2::sparsify_matching;
    use crate::phase3::form_slack_triads;
    use acd::{compute_acd, AcdParams};
    use graphgen::generators;
    use localsim::RoundLedger;

    fn setup() -> (graphgen::Graph, AcdResult, BalancedMatching, TriadSet) {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 60,
        })
        .unwrap();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        let rep = detect_loopholes(&inst.graph, &acd.clique_of);
        let cls = classify_cliques(&inst.graph, &acd, &rep).unwrap();
        let mut ledger = RoundLedger::new();
        let config = Config::for_delta(16);
        let f2 = balanced_matching(
            &inst.graph,
            &acd,
            &cls,
            config.subcliques,
            MatchingAlgo::DetDirect,
            HegAlgo::Augmenting,
            false,
            &mut ledger,
        )
        .unwrap();
        let f3 = sparsify_matching(&inst.graph, &acd, &cls, &f2, config.acd.eps, 4, &mut ledger)
            .unwrap();
        let triads = form_slack_triads(&inst.graph, &acd, &f3, &mut ledger).unwrap();
        (inst.graph, acd, f2, triads)
    }

    #[test]
    fn triad_figure_mentions_all_triads() {
        let (g, acd, _, triads) = setup();
        let dot = render_triads(&g, &acd, &triads);
        assert!(dot.starts_with("graph slack_triads"));
        assert!(dot.matches("fillcolor=orange").count() >= 2 * triads.triads.len());
        assert!(dot.matches("doublecircle").count() == triads.triads.len());
        assert!(dot.contains("subgraph cluster_0"));
    }

    #[test]
    fn pair_graph_has_one_node_per_pair() {
        let (g, _, _, triads) = setup();
        let dot = render_pair_graph(&g, &triads);
        assert_eq!(dot.matches("label=\"{").count(), triads.triads.len());
    }

    #[test]
    fn matching_figure_orients_f2() {
        let (g, acd, f2, _) = setup();
        let dot = render_matching(&g, &acd, &f2);
        assert_eq!(dot.matches("color=green").count(), f2.edges.len());
    }
}
