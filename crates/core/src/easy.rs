//! Algorithm 3 — Coloring loopholes and easy cliques (§3.9, Lemma 20).
//!
//! Every uncolored loophole vertex votes for one of its loopholes; a
//! ruling set of the voted loopholes (computed on the virtual intersection
//! /adjacency graph `G_L`) selects pairwise non-interfering loopholes; a
//! BFS layering of the remaining uncolored vertices around the selected
//! loopholes is colored outermost-first (every vertex keeps an uncolored
//! neighbor one layer below, hence slack); and finally the selected
//! loopholes themselves are colored by brute force (deg-list colorability,
//! Lemma 7).

use graphgen::{Coloring, Graph, NodeId};
use localsim::RoundLedger;
use primitives::ruling::{ruling_set_probed, RulingStyle};
use serde::{Deserialize, Serialize};

use crate::error::DeltaColoringError;
use crate::loophole::{brute_force_color_loophole, Loophole, LoopholeReport};
use crate::phase4::run_list_instance;

/// Dilation for one `G_L` round on the real network (loophole diameter ≤ 3
/// plus one connecting edge).
const LOOPHOLE_DILATION: u64 = 4;

/// Statistics of the easy-clique sweep (experiment E7).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EasyStats {
    /// Distinct voted loopholes.
    pub voted: usize,
    /// Loopholes selected by the ruling set.
    pub selected: usize,
    /// Number of BFS layers used (paper bound: 25 at `ε = 1/63`).
    pub layers: usize,
    /// Vertices colored by this sweep.
    pub colored: usize,
}

/// Colors every remaining uncolored vertex (easy cliques and loopholes).
///
/// `ruling_r` selects the ruling-set radius (`1` = MIS; the paper's
/// Lemma 19 uses up to 6 to trade rounds for Δ-dependence). `threads`
/// bounds the worker pool for the loophole brute-force step (`0` = the
/// process default, see [`localsim::default_threads`]); the result is
/// bit-identical at every thread count.
///
/// # Errors
///
/// [`DeltaColoringError::UnsupportedStructure`] if uncolored vertices
/// remain that no loophole can reach — on valid dense inputs Lemma 20
/// excludes this.
pub fn color_easy_and_loopholes(
    g: &Graph,
    loopholes: &LoopholeReport,
    ruling_r: usize,
    ruling_style: RulingStyle,
    threads: usize,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
) -> Result<EasyStats, DeltaColoringError> {
    color_easy_and_loopholes_scoped(
        g,
        loopholes,
        ruling_r,
        ruling_style,
        None,
        threads,
        coloring,
        ledger,
    )
}

/// Scoped variant of [`color_easy_and_loopholes`]: only vertices with
/// `scope[v]` are colored (the randomized pipeline uses this to sweep one
/// shattered component at a time). `None` means every uncolored vertex.
///
/// # Errors
///
/// As [`color_easy_and_loopholes`].
#[allow(clippy::too_many_arguments)]
pub fn color_easy_and_loopholes_scoped(
    g: &Graph,
    loopholes: &LoopholeReport,
    ruling_r: usize,
    ruling_style: RulingStyle,
    scope: Option<&[bool]>,
    threads: usize,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
) -> Result<EasyStats, DeltaColoringError> {
    let delta = g.max_degree() as u32;
    let in_scope = |v: NodeId| scope.is_none_or(|s| s[v.index()]);
    let uncolored_before: Vec<NodeId> = g
        .vertices()
        .filter(|&v| !coloring.is_colored(v) && in_scope(v))
        .collect();
    if uncolored_before.is_empty() {
        return Ok(EasyStats::default());
    }

    // --- Step 1: votes, deduplicated by vertex set. ---
    let mut voted: Vec<Loophole> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<NodeId>> = std::collections::HashSet::new();
    for &v in &uncolored_before {
        if let Some(lh) = &loopholes.vote[v.index()] {
            let mut key = lh.vertices();
            if key.iter().any(|&x| coloring.is_colored(x) || !in_scope(x)) {
                continue; // stale vote: the loophole lost a vertex already
            }
            key.sort_unstable();
            if seen.insert(key) {
                voted.push(lh.clone());
            }
        }
    }
    if voted.is_empty() {
        return Err(DeltaColoringError::UnsupportedStructure(format!(
            "{} uncolored vertices remain but no loophole is available",
            uncolored_before.len()
        )));
    }
    ledger.charge_constant("easy/loophole voting", 1);

    // --- Step 2: virtual graph G_L. ---
    let mut holders: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
    for (i, lh) in voted.iter().enumerate() {
        for v in lh.vertices() {
            holders[v.index()].push(i as u32);
        }
    }
    let mut gl_edges: Vec<(u32, u32)> = Vec::new();
    for v in g.vertices() {
        let hv = &holders[v.index()];
        // Intersection at v.
        for (a, &i) in hv.iter().enumerate() {
            for &j in &hv[a + 1..] {
                gl_edges.push((i.min(j), i.max(j)));
            }
        }
        // Adjacency across graph edges.
        for &w in g.neighbors(v) {
            if v < w {
                for &i in hv {
                    for &j in &holders[w.index()] {
                        if i != j {
                            gl_edges.push((i.min(j), i.max(j)));
                        }
                    }
                }
            }
        }
    }
    gl_edges.sort_unstable();
    gl_edges.dedup();
    let gl = Graph::from_edges(voted.len(), gl_edges).expect("G_L is valid");

    // --- Step 3: ruling set on G_L. ---
    let probe = ledger.probe().clone();
    let rs = ruling_set_probed(&gl, ruling_r, ruling_style, &probe)?;
    ledger.charge_virtual("easy/loophole ruling set", rs.rounds, LOOPHOLE_DILATION);
    let selected: Vec<&Loophole> = voted
        .iter()
        .enumerate()
        .filter(|&(i, _)| rs.value[i])
        .map(|(_, lh)| lh)
        .collect();

    // --- Step 4: BFS layering through uncolored vertices. ---
    let mut layer: Vec<Option<usize>> = vec![None; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for lh in &selected {
        for v in lh.vertices() {
            if layer[v.index()].is_none() {
                layer[v.index()] = Some(0);
                queue.push_back(v);
            }
        }
    }
    let mut max_layer = 0;
    while let Some(v) = queue.pop_front() {
        let d = layer[v.index()].expect("queued vertices are layered");
        for &w in g.neighbors(v) {
            if !coloring.is_colored(w) && in_scope(w) && layer[w.index()].is_none() {
                layer[w.index()] = Some(d + 1);
                max_layer = max_layer.max(d + 1);
                queue.push_back(w);
            }
        }
    }
    if let Some(v) = uncolored_before.iter().find(|v| layer[v.index()].is_none()) {
        return Err(DeltaColoringError::UnsupportedStructure(format!(
            "uncolored vertex {v} is unreachable from every selected loophole              (scoped={}, voted={}, selected={}, uncolored={})",
            scope.is_some(),
            voted.len(),
            selected.len(),
            uncolored_before.len()
        )));
    }
    ledger.charge("easy/BFS layering", max_layer as u64);

    // --- Steps 5-7: color layers outermost-first. ---
    for l in (1..=max_layer).rev() {
        let active: Vec<NodeId> = g
            .vertices()
            .filter(|&v| layer[v.index()] == Some(l) && !coloring.is_colored(v))
            .collect();
        run_list_instance(
            g,
            &active,
            delta,
            coloring,
            format!("easy/layer {l}"),
            ledger,
        )?;
    }

    // --- Step 8: brute-force the selected loopholes. ---
    // Selected loopholes are pairwise non-adjacent in G_L — disjoint
    // vertex sets with no connecting edge — so each brute force reads
    // colors no other selected loophole writes. Computing every plan
    // against the pre-step state and applying the writes in selection
    // order is therefore bit-identical to the sequential interleaving,
    // and the plans can run on the worker pool.
    let plans = {
        let snapshot: &Coloring = coloring;
        crate::pool::run_indexed_metered(
            crate::pool::effective_threads(threads),
            selected.len(),
            ledger.probe().metrics(),
            |i| {
                let vs = selected[i].vertices();
                let colors = brute_force_color_loophole(g, snapshot, &vs, delta);
                (vs, colors)
            },
        )
    };
    for (vs, colors) in plans {
        let Some(colors) = colors else {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Lemma 7 violated: loophole {vs:?} admits no deg-list coloring"
            )));
        };
        for (i, &v) in vs.iter().enumerate() {
            coloring.set(v, colors[i]);
        }
    }
    ledger.charge_constant("easy/loophole brute force", 1);

    let colored = uncolored_before
        .iter()
        .filter(|&&v| coloring.is_colored(v))
        .count();
    Ok(EasyStats {
        voted: voted.len(),
        selected: selected.len(),
        layers: max_layer,
        colored,
    })
}
