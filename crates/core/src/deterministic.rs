//! Algorithm 1 — the deterministic Δ-coloring pipeline (Theorem 1).

use acd::{compute_acd, AcdParams, AcdResult};
use graphgen::{Color, Coloring, Graph};
use localsim::{Probe, RoundLedger};
use primitives::ruling::RulingStyle;
use serde::{Deserialize, Serialize};

use crate::classify::{classify_cliques, Classification};
use crate::easy::{color_easy_and_loopholes, EasyStats};
use crate::error::DeltaColoringError;
use crate::loophole::{detect_loopholes, LoopholeReport};
use crate::phase1::{balanced_matching, BalancedMatching, Phase1Stats};
use crate::phase2::{sparsify_matching, SparsifiedMatching};
use crate::phase3::{form_slack_triads, TriadSet};
use crate::phase4::{color_hard_cliques_phase4, Phase4Stats};

/// Which maximal-matching subroutine Phase 1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchingAlgo {
    /// Deterministic class-scheduled proposals (default; `O(n+m)` memory).
    DetDirect,
    /// Deterministic line-graph color-class sweep (small instances).
    DetLineGraph,
    /// Randomized Israeli–Itai proposals with the given seed.
    Rand(u64),
}

/// Which hyperedge-grabbing solver Phase 1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HegAlgo {
    /// Deterministic parallel augmenting paths (default).
    Augmenting,
    /// Randomized deficiency-token walk with the given seed.
    TokenWalk(u64),
    /// Centralized exact matching (oracle; charged a single round).
    Sequential,
}

/// Configuration of the deterministic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// ACD parameters (ε, η).
    pub acd: AcdParams,
    /// Number of sub-cliques per `C_HEG` clique (paper: 28).
    pub subcliques: usize,
    /// Maximal matching subroutine.
    pub matching: MatchingAlgo,
    /// HEG solver.
    pub heg: HegAlgo,
    /// Ruling-set radius for Algorithm 3 (1 = plain MIS).
    pub ruling_r: usize,
    /// Segment parameter of the degree splitting.
    pub split_segment: usize,
    /// Enforce the paper's exact constants (Lemma 16's Δ−2 bound etc.);
    /// automatically enabled for Δ ≥ 63 where they are proved.
    pub enforce_paper_bounds: bool,
    /// Worker threads for pipeline-level parallelism (the leftover
    /// component pool of the randomized pipeline, the loophole brute
    /// force of Algorithm 3). `0` resolves to the process default
    /// ([`localsim::default_threads`], i.e. `LOCALSIM_THREADS` or the
    /// CLI's `--threads`). Any value produces bit-identical colorings,
    /// ledgers, and telemetry; see `docs/PERFORMANCE.md`.
    pub threads: usize,
}

impl Config {
    /// The paper's configuration (`ε = 1/63`, 28 sub-cliques); requires
    /// `Δ ≥ 63`.
    pub fn paper() -> Self {
        Config {
            acd: AcdParams::paper(),
            subcliques: 28,
            matching: MatchingAlgo::DetDirect,
            heg: HegAlgo::Augmenting,
            ruling_r: 1,
            split_segment: 4,
            enforce_paper_bounds: true,
            threads: 0,
        }
    }

    /// A configuration scaled to the instance's maximum degree: the paper
    /// values for `Δ ≥ 63`, relaxed ε and fewer sub-cliques below.
    pub fn for_delta(delta: usize) -> Self {
        if delta >= 63 {
            Self::paper()
        } else {
            Config {
                acd: AcdParams::for_delta(delta),
                subcliques: (delta / 4).clamp(2, 28),
                enforce_paper_bounds: false,
                ..Self::paper()
            }
        }
    }
}

/// Aggregate statistics of one pipeline run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Almost-cliques in the ACD.
    pub cliques: usize,
    /// Hard cliques.
    pub hard: usize,
    /// `C_HEG` cliques.
    pub heg: usize,
    /// Loophole vertices detected.
    pub loophole_vertices: usize,
    /// Phase 1 structural stats.
    pub phase1: Phase1Stats,
    /// Phase 4 structural stats.
    pub phase4: Phase4Stats,
    /// Easy-sweep stats.
    pub easy: EasyStats,
    /// Maximum incoming F3 edges over cliques, and the Lemma 13 bound.
    pub max_incoming: usize,
    /// Lemma 13's incoming bound.
    pub incoming_bound: f64,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct Report {
    /// The proper Δ-coloring.
    pub coloring: Coloring,
    /// Per-phase LOCAL round accounting.
    pub ledger: RoundLedger,
    /// Structural statistics (experiments E1/E5).
    pub stats: PipelineStats,
}

impl Report {
    /// Total LOCAL rounds.
    pub fn rounds(&self) -> u64 {
        self.ledger.total()
    }
}

/// Runs Theorem 1's deterministic Δ-coloring pipeline on a dense graph.
///
/// # Errors
///
/// * [`DeltaColoringError::NotDense`] if the ACD finds sparse vertices.
/// * [`DeltaColoringError::ContainsMaxClique`] on a `K_{Δ+1}`.
/// * Invariant/structure errors on inputs outside the paper's assumptions.
pub fn color_deterministic(g: &Graph, config: &Config) -> Result<Report, DeltaColoringError> {
    color_deterministic_probed(g, config, &Probe::disabled())
}

/// [`color_deterministic`] with structured telemetry: every pipeline step
/// opens a span on `probe`, every ledger charge surfaces as a `charge`
/// event, and every simulator round executed by a subroutine surfaces as a
/// `round` event.
///
/// # Errors
///
/// As [`color_deterministic`].
pub fn color_deterministic_probed(
    g: &Graph,
    config: &Config,
    probe: &Probe,
) -> Result<Report, DeltaColoringError> {
    match crate::supervisor::drive_deterministic(
        g,
        config,
        probe,
        &crate::supervisor::Supervisor::passive(),
        None,
    )? {
        crate::supervisor::RunOutcome::Complete { report, .. } => Ok(report),
        crate::supervisor::RunOutcome::Suspended { .. }
        | crate::supervisor::RunOutcome::Failed(_) => {
            unreachable!("a passive supervisor neither suspends nor captures failures")
        }
    }
}

/// Step 0 of both pipelines: ACD computation, charged and spanned on the
/// ledger's probe, plus the density check. The supervisor replays this
/// silently on resume by passing a throwaway ledger with a disabled probe
/// — the decomposition is a pure function of `(g, config.acd)`.
pub(crate) fn det_phase_acd(
    g: &Graph,
    config: &Config,
    ledger: &mut RoundLedger,
) -> Result<AcdResult, DeltaColoringError> {
    let probe = ledger.probe().clone();
    let mut span = probe.span("pipeline/acd");
    let acd = compute_acd(g, &config.acd);
    ledger.charge_constant("acd computation", acd.rounds);
    span.add_rounds(acd.rounds);
    span.finish();
    if !acd.is_dense() {
        return Err(DeltaColoringError::NotDense {
            sparse: acd.sparse.len(),
        });
    }
    Ok(acd)
}

/// Loophole detection + hard/easy classification (shared by both
/// pipelines; silently replayable the same way as [`det_phase_acd`]).
pub(crate) fn det_phase_classification(
    g: &Graph,
    acd: &AcdResult,
    ledger: &mut RoundLedger,
) -> Result<(LoopholeReport, Classification), DeltaColoringError> {
    let probe = ledger.probe().clone();
    let mut span = probe.span("pipeline/classification");
    let loopholes = detect_loopholes(g, &acd.clique_of);
    ledger.charge_constant("loophole detection", loopholes.rounds);
    let cls = classify_cliques(g, acd, &loopholes)?;
    ledger.charge_constant("hard/easy classification", cls.rounds);
    span.add_rounds(loopholes.rounds + cls.rounds);
    span.finish();
    Ok((loopholes, cls))
}

/// Step 3 (Algorithm 3): the easy sweep, spanned and charged.
pub(crate) fn det_phase_easy(
    g: &Graph,
    config: &Config,
    loopholes: &LoopholeReport,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
    stats: &mut PipelineStats,
) -> Result<(), DeltaColoringError> {
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/easy sweep");
    stats.easy = color_easy_and_loopholes(
        g,
        loopholes,
        config.ruling_r,
        RulingStyle::Deterministic,
        config.threads,
        coloring,
        ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(())
}

/// Algorithm 2 (phases 1–4), shared with the randomized pipeline.
///
/// `pair_palette_override` lets the randomized post-shattering phase
/// restrict pair colors to `1..Δ` (color 0 is reserved for T-node pairs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_hard_phases(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    config: &Config,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
    stats: &mut PipelineStats,
    pair_palette_override: Option<Vec<Color>>,
    allow_useless: bool,
) -> Result<(), DeltaColoringError> {
    let f2 = det_phase1(g, acd, cls, config, allow_useless, ledger)?;
    stats.phase1 = f2.stats.clone();

    let f3 = det_phase2(g, acd, cls, &f2, config, ledger)?;
    stats.max_incoming = f3.incoming.iter().copied().max().unwrap_or(0);
    stats.incoming_bound = f3.incoming_bound;

    let triads = det_phase3(g, acd, &f3, ledger)?;

    let delta = g.max_degree();
    let pair_palette =
        pair_palette_override.unwrap_or_else(|| (0..delta as u32).map(Color).collect());
    stats.phase4 = det_phase4(
        g,
        acd,
        cls,
        &triads,
        &pair_palette,
        coloring,
        config,
        ledger,
    )?;
    Ok(())
}

/// Phase 1: balanced matching (spanned and charged). Deterministic given
/// `(g, acd, cls, config)` when `config.matching`/`config.heg` are the
/// deterministic variants or seeded, so the supervisor replays it silently
/// on resume.
pub(crate) fn det_phase1(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    config: &Config,
    allow_useless: bool,
    ledger: &mut RoundLedger,
) -> Result<BalancedMatching, DeltaColoringError> {
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/phase1 balanced matching");
    let f2 = balanced_matching(
        g,
        acd,
        cls,
        config.subcliques,
        config.matching,
        config.heg,
        allow_useless,
        ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(f2)
}

/// Phase 2: matching sparsification (spanned and charged).
pub(crate) fn det_phase2(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    f2: &BalancedMatching,
    config: &Config,
    ledger: &mut RoundLedger,
) -> Result<SparsifiedMatching, DeltaColoringError> {
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/phase2 sparsify matching");
    let f3 = sparsify_matching(
        g,
        acd,
        cls,
        f2,
        config.acd.eps,
        config.split_segment,
        ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(f3)
}

/// Phase 3: slack-triad formation (spanned and charged).
pub(crate) fn det_phase3(
    g: &Graph,
    acd: &AcdResult,
    f3: &SparsifiedMatching,
    ledger: &mut RoundLedger,
) -> Result<TriadSet, DeltaColoringError> {
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/phase3 slack triads");
    let triads = form_slack_triads(g, acd, f3, ledger)?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(triads)
}

/// Phase 4: hard-clique coloring (spanned and charged). The only hard
/// phase that writes to `coloring` — its output is what the supervisor
/// snapshots at the phase-4 boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn det_phase4(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    triads: &TriadSet,
    pair_palette: &[Color],
    coloring: &mut Coloring,
    config: &Config,
    ledger: &mut RoundLedger,
) -> Result<Phase4Stats, DeltaColoringError> {
    let probe = ledger.probe().clone();
    let before = ledger.total();
    let mut span = probe.span("pipeline/phase4 coloring");
    let p4 = color_hard_cliques_phase4(
        g,
        acd,
        cls,
        triads,
        pair_palette,
        coloring,
        config.enforce_paper_bounds,
        ledger,
    )?;
    span.add_rounds(ledger.total() - before);
    span.finish();
    Ok(p4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::coloring::verify_delta_coloring;
    use graphgen::generators;

    fn hard(cliques: usize, delta: usize, ext: usize, seed: u64) -> generators::HardCliqueInstance {
        generators::hard_cliques(&generators::HardCliqueParams {
            cliques,
            delta,
            external_per_vertex: ext,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn colors_pure_hard_instance() {
        let inst = hard(34, 16, 1, 31);
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert!(report.rounds() > 0);
        assert_eq!(report.stats.hard, 34);
    }

    #[test]
    fn colors_hard_instance_ext2() {
        let inst = hard(320, 16, 2, 32);
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }

    #[test]
    fn colors_easy_instance() {
        let inst = generators::easy_cliques(&generators::EasyCliqueParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 33,
            },
            easy: 4,
            kind: generators::LoopholeKind::LowDegree,
        })
        .unwrap();
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert!(report.stats.easy.colored > 0);
    }

    #[test]
    fn colors_mixed_instance() {
        let inst = generators::mixed_dense(&generators::MixedParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 34,
            },
            easy_low_degree: 2,
            easy_four_cycle: 1,
        })
        .unwrap();
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        assert!(report.stats.hard < 34);
        assert!(report.stats.hard > 0);
    }

    #[test]
    fn rejects_sparse_graph() {
        let g = generators::random_regular(100, 8, 3);
        let err = color_deterministic(&g, &Config::for_delta(8)).unwrap_err();
        assert!(matches!(err, DeltaColoringError::NotDense { .. }));
    }

    #[test]
    fn rejects_max_clique() {
        let g = generators::complete(9); // K9, Δ = 8
        let err = color_deterministic(&g, &Config::for_delta(8)).unwrap_err();
        assert_eq!(err, DeltaColoringError::ContainsMaxClique);
    }

    #[test]
    fn rejects_tiny_degree() {
        let g = generators::cycle(8);
        assert!(matches!(
            color_deterministic(&g, &Config::for_delta(2)),
            Err(DeltaColoringError::UnsupportedStructure(_))
        ));
    }

    #[test]
    fn deterministic_runs_agree() {
        let inst = hard(34, 16, 1, 35);
        let a = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        let b = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.rounds(), b.rounds());
    }

    #[test]
    fn alternative_subroutines_also_work() {
        let inst = hard(34, 16, 1, 36);
        for (matching, heg) in [
            (MatchingAlgo::Rand(7), HegAlgo::TokenWalk(9)),
            (MatchingAlgo::DetLineGraph, HegAlgo::Sequential),
        ] {
            let config = Config {
                matching,
                heg,
                ..Config::for_delta(16)
            };
            let report = color_deterministic(&inst.graph, &config).unwrap();
            verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        }
    }

    #[test]
    fn ledger_phases_populated() {
        let inst = hard(34, 16, 1, 37);
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        let ledger = &report.ledger;
        for phase in ["acd", "loophole", "phase1", "phase2", "phase4"] {
            assert!(
                ledger.total_for(phase) > 0,
                "phase {phase} missing from ledger:\n{ledger}"
            );
        }
    }
}
