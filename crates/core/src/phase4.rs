//! Phase 4 — Coloring (§3.6–3.7, Lemmas 16–17).
//!
//! **4A** builds the virtual conflict graph `G_V` over slack pairs (one
//! node per pair, an edge when any of the four underlying vertices are
//! adjacent), verifies Lemma 16's degree bound, and same-colors every pair
//! via one `(deg+1)`-list instance.
//!
//! **4B** colors the remaining hard vertices with two `(deg+1)`-list
//! instances: first everything except the slack vertices and one *stall*
//! vertex per Type-II clique (each such vertex has an uncolored same-clique
//! neighbor, hence slack), then the slack and stall vertices themselves
//! (slack vertices see two same-colored neighbors; stall vertices see an
//! uncolored easy neighbor).

use acd::AcdResult;
use graphgen::{Color, Coloring, Graph, NodeId};
use localsim::RoundLedger;
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::error::DeltaColoringError;
use crate::phase3::TriadSet;

/// Dilation for simulating one `G_V` round on the real network: a pair
/// spans two vertices at distance ≤ 2 (both neighbors of the slack vertex).
const PAIR_DILATION: u64 = 3;

/// Statistics of the coloring phase (experiment E5).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Phase4Stats {
    /// Number of slack pairs.
    pub pairs: usize,
    /// Maximum degree observed in `G_V`.
    pub gv_max_degree: usize,
    /// Lemma 16's bound `Δ − 2`.
    pub gv_degree_bound: usize,
    /// Sizes of the two finishing instances.
    pub instance_sizes: [usize; 2],
}

/// Runs Phase 4 over `coloring` (mutated in place). `pair_palette` is the
/// color space used for the slack pairs — `0..Δ` deterministically,
/// `1..Δ` in the randomized pipeline (color 0 is reserved for T-node
/// pairs there).
///
/// `extra_slack[v]` marks vertices with a slack source outside this
/// computation (used by the randomized pipeline for vertices adjacent to
/// uncolored boundary vertices); they may be scheduled in instance 2 even
/// without an own triad/stall.
///
/// # Errors
///
/// Propagates list-coloring failures and invariant violations.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn color_hard_cliques_phase4(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    triads: &TriadSet,
    pair_palette: &[Color],
    coloring: &mut Coloring,
    enforce_paper_bound: bool,
    ledger: &mut RoundLedger,
) -> Result<Phase4Stats, DeltaColoringError> {
    let delta = g.max_degree() as u32;
    let mut stats = Phase4Stats {
        pairs: triads.triads.len(),
        gv_degree_bound: delta.saturating_sub(2) as usize,
        ..Phase4Stats::default()
    };

    // ---- 4A: pair coloring on G_V. ----
    if !triads.triads.is_empty() {
        // pair id per vertex.
        let mut pair_of: Vec<Option<u32>> = vec![None; g.n()];
        for (i, t) in triads.triads.iter().enumerate() {
            pair_of[t.pair_in.index()] = Some(i as u32);
            pair_of[t.pair_out.index()] = Some(i as u32);
        }
        let mut gv_edges: Vec<(u32, u32)> = Vec::new();
        for (i, t) in triads.triads.iter().enumerate() {
            for x in [t.pair_in, t.pair_out] {
                for &w in g.neighbors(x) {
                    if let Some(j) = pair_of[w.index()] {
                        if j != i as u32 {
                            gv_edges.push(((i as u32).min(j), (i as u32).max(j)));
                        }
                    }
                }
            }
        }
        gv_edges.sort_unstable();
        gv_edges.dedup();
        let gv = Graph::from_edges(triads.triads.len(), gv_edges).expect("G_V is valid");
        stats.gv_max_degree = gv.max_degree();
        if enforce_paper_bound && gv.max_degree() > stats.gv_degree_bound {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Lemma 16 violated: G_V has degree {} > Δ-2 = {}",
                gv.max_degree(),
                stats.gv_degree_bound
            )));
        }
        if gv.max_degree() + 1 > pair_palette.len() {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "pair palette of {} colors cannot cover G_V degree {}",
                pair_palette.len(),
                gv.max_degree()
            )));
        }
        let palettes: Vec<Vec<Color>> = (0..gv.n()).map(|_| pair_palette.to_vec()).collect();
        let probe = ledger.probe().clone();
        let timed = primitives::list_coloring::deg_plus_one_list_color_probed(
            &gv, &palettes, None, &probe,
        )?;
        ledger.charge_virtual("phase4a/slack pair coloring", timed.rounds, PAIR_DILATION);
        for (i, t) in triads.triads.iter().enumerate() {
            let c = timed
                .value
                .get(NodeId::from(i))
                .expect("complete pair coloring");
            coloring.set(t.pair_in, c);
            coloring.set(t.pair_out, c);
        }
    }

    // ---- 4B: two finishing instances. ----
    // Stall vertices: one per hard clique without a triad (Type II), chosen
    // among members with no external hard neighbor.
    let with_triad: std::collections::HashSet<u32> =
        triads.triads.iter().map(|t| t.clique).collect();
    let mut is_deferred = vec![false; g.n()]; // slack + stall vertices
    for t in &triads.triads {
        is_deferred[t.slack.index()] = true;
    }
    for &cid in &cls.hard_ids {
        if with_triad.contains(&cid) {
            continue;
        }
        // A stall candidate has no external hard neighbor to propose with
        // AND an uncolored non-hard neighbor that is colored after it
        // (easy-clique vertices in Algorithm 1; easy-like or deferred
        // vertices in the randomized component solve) — that neighbor is
        // its slack source in instance 2.
        let stall = acd.cliques[cid as usize]
            .vertices
            .iter()
            .copied()
            .find(|&v| {
                triads.triad_of[v.index()].is_none()
                    && !g.neighbors(v).iter().any(|&w| {
                        cls.is_hard_vertex[w.index()] && acd.clique_of[w.index()] != Some(cid)
                    })
                    && g.neighbors(v)
                        .iter()
                        .any(|&w| !cls.is_hard_vertex[w.index()] && !coloring.is_colored(w))
            });
        let Some(stall) = stall else {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Type II clique {cid} has no stall candidate with an uncolored \
                 slack source"
            )));
        };
        is_deferred[stall.index()] = true;
    }

    // Instance 1: hard vertices minus colored pairs minus deferred ones.
    let inst1: Vec<NodeId> = g
        .vertices()
        .filter(|&v| {
            cls.is_hard_vertex[v.index()] && !coloring.is_colored(v) && !is_deferred[v.index()]
        })
        .collect();
    stats.instance_sizes[0] = inst1.len();
    run_list_instance(g, &inst1, delta, coloring, "phase4b/instance 1", ledger)?;

    // Instance 2: the deferred (slack + stall) vertices.
    let inst2: Vec<NodeId> = g
        .vertices()
        .filter(|&v| is_deferred[v.index()] && !coloring.is_colored(v))
        .collect();
    stats.instance_sizes[1] = inst2.len();
    run_list_instance(g, &inst2, delta, coloring, "phase4b/instance 2", ledger)?;

    Ok(stats)
}

/// Runs one `(deg+1)`-list instance over `active` with palettes = free
/// colors in `0..delta`, merging results into `coloring`.
pub(crate) fn run_list_instance(
    g: &Graph,
    active: &[NodeId],
    delta: u32,
    coloring: &mut Coloring,
    phase: impl Into<String>,
    ledger: &mut RoundLedger,
) -> Result<(), DeltaColoringError> {
    if active.is_empty() {
        return Ok(());
    }
    let palettes: Vec<Vec<Color>> = active
        .iter()
        .map(|&v| {
            let used: std::collections::HashSet<Color> = g
                .neighbors(v)
                .iter()
                .filter_map(|&w| coloring.get(w))
                .collect();
            (0..delta)
                .map(Color)
                .filter(|c| !used.contains(c))
                .collect()
        })
        .collect();
    let probe = ledger.probe().clone();
    let timed = primitives::list_coloring::deg_plus_one_list_color_subset_probed(
        g, active, &palettes, None, &probe,
    )?;
    ledger.charge(phase, timed.rounds);
    for (v, c) in timed.value {
        coloring.set(v, c);
    }
    Ok(())
}
