//! Phase 2 — Sparsifying the core matching (§3.4, Lemma 13).
//!
//! The virtual graph `G_Q` puts two nodes per hard clique — `Q⁺` (vertices
//! with outgoing `F2` edges) and `Q⁻` (the rest) — and one edge per `F2`
//! edge. A two-level degree splitting (Corollary 22 with `i = 2`) keeps a
//! quarter of the edges, after which each clique retains roughly
//! `K/4` outgoing and at most `Δ/4 + O(εΔ)` incoming edges. We then keep
//! **exactly two** outgoing edges per clique (the paper's Step 6), choosing
//! heads with the lowest incoming load; a cap-aware fixup re-adds edges
//! from `F2` for any clique the split left under-supplied, so Lemma 13's
//! conclusion — two outgoing, strictly fewer than `½(Δ − 2εΔ − 1)`
//! incoming — holds for every parameterization, not only the paper's
//! `ε = 1/63, K = 28` regime (see DESIGN.md).

use acd::AcdResult;
use graphgen::{Graph, NodeId};
use localsim::RoundLedger;

use crate::classify::Classification;
use crate::error::DeltaColoringError;
use crate::phase1::BalancedMatching;

/// The sparsified, oriented matching `F3`.
#[derive(Debug, Clone)]
pub struct SparsifiedMatching {
    /// Oriented edges `(tail, head)`; exactly two per Type-I⁺ clique.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Clique ids that ended Type I⁺ (they will receive slack triads).
    pub type_i_plus: Vec<u32>,
    /// Incoming `F3` edges per clique.
    pub incoming: Vec<usize>,
    /// The Lemma 13 incoming bound `½(Δ − 2εΔ − 1)` that was enforced.
    pub incoming_bound: f64,
}

/// Runs Phase 2.
///
/// # Errors
///
/// Propagates simulator errors; reports an invariant violation if the
/// cap-aware selection cannot give every `C_HEG` clique two outgoing edges
/// within the incoming bound (cannot happen under the paper's parameters).
pub fn sparsify_matching(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    f2: &BalancedMatching,
    eps: f64,
    segment: usize,
    ledger: &mut RoundLedger,
) -> Result<SparsifiedMatching, DeltaColoringError> {
    let delta = g.max_degree() as f64;
    let bound = 0.5 * (delta - 2.0 * eps * delta - 1.0);
    // The cap actually needed by Lemma 16: a pair's G_V degree is at most
    // in_C + in_C' + e_C + e_C', so capping incoming at
    // ⌊(Δ − 2 − 2·e_max)/2⌋ keeps it within Δ − 2. Under the paper's
    // parameters (e_max ≤ εΔ) this is at least as strict as the ½(Δ−2εΔ−1)
    // bound of Lemma 13.
    let e_max = cls
        .hard_ids
        .iter()
        .map(|&c| g.max_degree() + 1 - acd.cliques[c as usize].vertices.len())
        .max()
        .unwrap_or(1);
    let n_cliques = acd.cliques.len();
    let clique_of = |v: NodeId| acd.clique_of[v.index()].expect("F2 touches hard cliques only");

    if f2.edges.is_empty() {
        ledger.charge_constant("phase2/degree splitting", 0);
        return Ok(SparsifiedMatching {
            edges: Vec::new(),
            type_i_plus: Vec::new(),
            incoming: vec![0; n_cliques],
            incoming_bound: bound,
        });
    }

    // G_Q: node 2c = Q⁺ of clique c, node 2c+1 = Q⁻ of clique c.
    let gq_edges: Vec<(u32, u32)> = f2
        .edges
        .iter()
        .map(|&(t, h)| (2 * clique_of(t), 2 * clique_of(h) + 1))
        .collect();
    let gq = Graph::from_edges(2 * n_cliques, gq_edges).expect("G_Q is a simple graph");
    let probe = ledger.probe().clone();
    let split = primitives::split::split_into_parts_probed(&gq, 2, segment, &probe)?;
    ledger.charge("phase2/degree splitting (2 levels)", split.rounds);

    // Keep F2 edges whose G_Q edge landed in part 0. `Graph::edges()`
    // iterates in sorted order, so translate via an index map.
    let gq_sorted: Vec<(NodeId, NodeId)> = gq.edges().collect();
    let mut part_of: std::collections::HashMap<(u32, u32), u8> = std::collections::HashMap::new();
    for (i, &(a, b)) in gq_sorted.iter().enumerate() {
        part_of.insert((a.0, b.0), split.value[i]);
    }
    let kept: Vec<bool> = f2
        .edges
        .iter()
        .map(|&(t, h)| {
            let a = 2 * clique_of(t);
            let b = 2 * clique_of(h) + 1;
            part_of[&(a.min(b), a.max(b))] == 0
        })
        .collect();

    // Cap-aware selection of exactly two outgoing edges per C_HEG clique,
    // preferring edges the split kept, then falling back to all of F2.
    let cap = (g.max_degree() as i64 - 2 - 2 * e_max as i64).max(0) as usize / 2;
    let mut incoming = vec![0usize; n_cliques];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n_cliques]; // F2 indices per tail clique
    for (i, &(t, _)) in f2.edges.iter().enumerate() {
        out_edges[clique_of(t) as usize].push(i);
    }
    let mut selected: Vec<usize> = Vec::new();
    let mut heg_sorted = cls.heg_ids.clone();
    heg_sorted.sort_unstable();
    for &cid in &heg_sorted {
        let mut picked = 0;
        // Two passes: split-kept edges first, then the rest of F2.
        for pass in 0..2 {
            if picked == 2 {
                break;
            }
            // Candidates sorted by current head load (stable by index).
            let mut cands: Vec<usize> = out_edges[cid as usize]
                .iter()
                .copied()
                .filter(|&i| (pass == 0) == kept[i])
                .collect();
            cands.sort_by_key(|&i| incoming[clique_of(f2.edges[i].1) as usize]);
            for i in cands {
                if picked == 2 {
                    break;
                }
                let head_clique = clique_of(f2.edges[i].1) as usize;
                if incoming[head_clique] < cap {
                    incoming[head_clique] += 1;
                    selected.push(i);
                    picked += 1;
                }
            }
        }
        if picked != 2 {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Lemma 13: clique {cid} could not keep two outgoing edges within \
                 the incoming cap {cap}"
            )));
        }
    }
    ledger.charge_constant("phase2/outgoing selection", 4);

    let edges: Vec<(NodeId, NodeId)> = selected.iter().map(|&i| f2.edges[i]).collect();
    // The cap enforces the Lemma 16 requirement by construction; Lemma 13's
    // ε-form bound additionally holds under the paper's parameters.
    for (c, &inc) in incoming.iter().enumerate() {
        if inc > cap {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Lemma 13: clique {c} has {inc} incoming F3 edges, cap {cap}"
            )));
        }
    }
    Ok(SparsifiedMatching {
        edges,
        type_i_plus: heg_sorted,
        incoming,
        incoming_bound: bound,
    })
}
