//! Phase 1 — Balanced Matching (§3.3, Lemmas 10–12).
//!
//! 1. Compute a maximal matching `F1` on the inter-clique edges between
//!    hard vertices.
//! 2. Partition every `C_HEG` clique into `K` sub-cliques; every vertex
//!    requests to grab the `F1` edge `φ(v)` at its matched proxy `f(v)`.
//! 3. Solve the resulting hyperedge-grabbing instance (Lemma 5).
//! 4. Rearrange each grabbed `F1` edge onto its grabber and orient it away,
//!    yielding the oriented matching `F2` with `K` outgoing edges per
//!    `C_HEG` clique (Lemma 12).

use std::collections::HashMap;

use acd::AcdResult;
use graphgen::{Graph, NodeId};
use hypergraph::Hypergraph;
use localsim::RoundLedger;
use serde::{Deserialize, Serialize};

use crate::classify::Classification;
use crate::deterministic::{HegAlgo, MatchingAlgo};
use crate::error::DeltaColoringError;

/// Dilation for simulating one hypergraph round on the real network: a
/// sub-clique spans a diameter-1 clique and its requested edges are at most
/// 2 hops away.
const HEG_DILATION: u64 = 3;

/// Structural statistics of the phase (experiment E5).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Phase1Stats {
    /// Size of the maximal matching `F1`.
    pub f1_size: usize,
    /// Number of sub-cliques (hypergraph vertices).
    pub hyper_vertices: usize,
    /// Number of hyperedges (requested `F1` edges).
    pub hyper_edges: usize,
    /// Minimum hypergraph degree `δ_H`.
    pub delta_h: usize,
    /// Maximum hypergraph rank `r_H`.
    pub r_h: usize,
    /// Number of `F2` edges.
    pub f2_size: usize,
    /// Minimum outgoing `F2` edges over `C_HEG` cliques.
    pub min_outgoing: usize,
    /// Rounds of the matching subroutine.
    pub matching_rounds: u64,
    /// Rounds of the HEG subroutine (after dilation).
    pub heg_rounds: u64,
}

/// The oriented matching `F2`.
#[derive(Debug, Clone)]
pub struct BalancedMatching {
    /// Oriented edges `(tail, head)`: outgoing for the tail's clique.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Statistics for E5.
    pub stats: Phase1Stats,
}

/// Requests grouped per grabbed F1 edge: (sub-clique, requester, proxy).
type RequestGroup = Vec<(u32, NodeId, NodeId)>;

/// Runs Phase 1. `subcliques` is the paper's constant 28 (configurable for
/// small instances); every `C_HEG` clique must have at least that many
/// members.
///
/// # Errors
///
/// Propagates subroutine failures and invariant violations (Lemmas 10/12).
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn balanced_matching(
    g: &Graph,
    acd: &AcdResult,
    cls: &Classification,
    subcliques: usize,
    matching: MatchingAlgo,
    heg: HegAlgo,
    allow_useless: bool,
    ledger: &mut RoundLedger,
) -> Result<BalancedMatching, DeltaColoringError> {
    // --- Step 1: maximal matching F1 on (V_hard, E_hard). ---
    let hard_vertices: Vec<NodeId> = g
        .vertices()
        .filter(|&v| cls.is_hard_vertex[v.index()])
        .collect();
    let mut to_sub = vec![u32::MAX; g.n()];
    for (i, &v) in hard_vertices.iter().enumerate() {
        to_sub[v.index()] = i as u32;
    }
    let mut match_edges = Vec::new();
    for &v in &hard_vertices {
        for &w in g.neighbors(v) {
            if v < w
                && cls.is_hard_vertex[w.index()]
                && acd.clique_of[v.index()] != acd.clique_of[w.index()]
            {
                match_edges.push((to_sub[v.index()], to_sub[w.index()]));
            }
        }
    }
    let hgraph =
        Graph::from_edges(hard_vertices.len(), match_edges).expect("hard-edge subgraph is valid");
    let probe = ledger.probe().clone();
    let timed = match matching {
        MatchingAlgo::DetDirect => {
            primitives::matching::maximal_matching_det_direct_probed(&hgraph, &probe)?
        }
        MatchingAlgo::DetLineGraph => {
            primitives::matching::maximal_matching_det_probed(&hgraph, &probe)?
        }
        MatchingAlgo::Rand(seed) => {
            primitives::matching::maximal_matching_rand_probed(&hgraph, seed, &probe)?
        }
    };
    ledger.charge("phase1/maximal matching F1", timed.rounds);
    let matching_rounds = timed.rounds;
    // F1 in original ids; per-vertex incident F1 edge index.
    let f1: Vec<(NodeId, NodeId)> = timed
        .value
        .edges
        .iter()
        .map(|&(a, b)| (hard_vertices[a.index()], hard_vertices[b.index()]))
        .collect();
    let mut f1_of: Vec<Option<u32>> = vec![None; g.n()];
    for (i, &(a, b)) in f1.iter().enumerate() {
        f1_of[a.index()] = Some(i as u32);
        f1_of[b.index()] = Some(i as u32);
    }

    // --- Step 2: sub-cliques and grab requests. ---
    let heg_set: std::collections::HashSet<u32> = cls.heg_ids.iter().copied().collect();
    // Sub-clique ids are dense: (position of clique in heg_ids) * K + part.
    let mut sub_of: HashMap<NodeId, u32> = HashMap::new();
    let mut n_subs = 0u32;
    // Members are filtered through the classification's hard-vertex mask:
    // the randomized component solve drops already-colored pair vertices
    // from their cliques here (they are the §4 "useless" boundary).
    let active_members = |cid: u32| -> Vec<NodeId> {
        acd.cliques[cid as usize]
            .vertices
            .iter()
            .copied()
            .filter(|v| cls.is_hard_vertex[v.index()])
            .collect()
    };
    for &cid in &cls.heg_ids {
        let members = active_members(cid);
        if members.len() < subcliques {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "clique {cid} has {} active members, fewer than the {subcliques} sub-cliques requested",
                members.len()
            )));
        }
        for (j, &v) in members.iter().enumerate() {
            let part = j * subcliques / members.len();
            sub_of.insert(v, n_subs + part as u32);
        }
        n_subs += subcliques as u32;
    }

    // f(v) and φ(v) for every vertex of a C_HEG clique.
    // (f1 edge, subclique, requester, proxy f(v))
    let mut requests: Vec<(u32, u32, NodeId, NodeId)> = Vec::new();
    for &cid in &cls.heg_ids {
        for v in active_members(cid) {
            let proxy = if f1_of[v.index()].is_some() {
                v
            } else {
                // Minimum-uid external hard neighbor; maximality of F1
                // guarantees it is matched.
                let candidate = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| {
                        cls.is_hard_vertex[w.index()] && acd.clique_of[w.index()] != Some(cid)
                    })
                    .min()
                    .copied();
                match candidate {
                    Some(u) => u,
                    None if allow_useless => continue, // a "useless" vertex (§4)
                    None => {
                        return Err(DeltaColoringError::InvariantViolated(format!(
                            "C_HEG member {v} has no external hard neighbor"
                        )))
                    }
                }
            };
            let Some(e) = f1_of[proxy.index()] else {
                return Err(DeltaColoringError::InvariantViolated(format!(
                    "proxy {proxy} of {v} is unmatched despite F1 maximality"
                )));
            };
            requests.push((e, sub_of[&v], v, proxy));
        }
    }
    // With useless vertices allowed, every sub-clique must still field at
    // least one request (the caller's scoped C_HEG rule guarantees this).
    if allow_useless {
        let mut has_request = vec![false; n_subs as usize];
        for &(_, q, _, _) in &requests {
            has_request[q as usize] = true;
        }
        if let Some(q) = has_request.iter().position(|&b| !b) {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "sub-clique {q} has no proposing member (too many useless vertices)"
            )));
        }
    }

    // Lemma 10: within one sub-clique all requested edges are distinct.
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for &(e, q, v, _) in &requests {
        if !seen.insert((q, e)) {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Lemma 10 violated: sub-clique {q} requests edge {e} twice (vertex {v})"
            )));
        }
    }

    // --- Step 3: hypergraph and HEG. ---
    let mut by_edge: HashMap<u32, RequestGroup> = HashMap::new();
    for &(e, q, v, p) in &requests {
        by_edge.entry(e).or_default().push((q, v, p));
    }
    let mut hyper_edges: Vec<Vec<u32>> = Vec::with_capacity(by_edge.len());
    let mut edge_meta: Vec<(u32, RequestGroup)> = Vec::with_capacity(by_edge.len());
    let mut keys: Vec<u32> = by_edge.keys().copied().collect();
    keys.sort_unstable();
    for e in keys {
        let reqs = by_edge.remove(&e).expect("key exists");
        hyper_edges.push(reqs.iter().map(|&(q, _, _)| q).collect());
        edge_meta.push((e, reqs));
    }
    let hyper = Hypergraph::new(n_subs as usize, hyper_edges)
        .expect("request hypergraph is valid (Lemma 10 de-duplicates)");
    let stats_dh = hyper.min_degree();
    let stats_rh = hyper.rank();
    let (grab, heg_raw_rounds) = if n_subs == 0 {
        (Vec::new(), 0)
    } else {
        match heg {
            HegAlgo::Augmenting => {
                let t = hypergraph::heg_augmenting(&hyper)?;
                (t.value, t.rounds)
            }
            HegAlgo::TokenWalk(seed) => {
                let t = hypergraph::heg_token_walk(&hyper, seed)?;
                (t.value, t.rounds)
            }
            HegAlgo::Sequential => (hypergraph::heg_sequential(&hyper)?, 1),
        }
    };
    let heg_rounds = heg_raw_rounds * HEG_DILATION;
    ledger.charge("phase1/hyperedge grabbing", heg_rounds);

    // --- Step 4: build F2. ---
    let mut f2: Vec<(NodeId, NodeId)> = Vec::new();
    for (q, &he) in grab.iter().enumerate() {
        let (f1_idx, reqs) = &edge_meta[he as usize];
        let &(_, v_e, proxy) = reqs
            .iter()
            .find(|&&(qq, _, _)| qq == q as u32)
            .expect("grabbed hyperedge contains the grabbing sub-clique");
        let tail = v_e;
        let head = if proxy == v_e {
            // v_e carries the F1 edge itself: keep it, oriented outward.
            let (a, b) = f1[*f1_idx as usize];
            if a == v_e {
                b
            } else {
                a
            }
        } else {
            // Rearranged edge {v_e, f(v_e)}: the proxy becomes the head.
            proxy
        };
        debug_assert!(g.has_edge(tail, head));
        f2.push((tail, head));
    }
    // Lemma 12: F2 is a matching.
    let mut touched = vec![false; g.n()];
    for &(t, h) in &f2 {
        if touched[t.index()] || touched[h.index()] {
            return Err(DeltaColoringError::InvariantViolated(format!(
                "Lemma 12 violated: F2 is not a matching at ({t}, {h})"
            )));
        }
        touched[t.index()] = true;
        touched[h.index()] = true;
    }
    // Lemma 12: every C_HEG clique has exactly `subcliques` outgoing edges.
    let mut outgoing = vec![0usize; acd.cliques.len()];
    for &(t, _) in &f2 {
        outgoing[acd.clique_of[t.index()].expect("tails are hard") as usize] += 1;
    }
    let min_outgoing = cls
        .heg_ids
        .iter()
        .map(|&c| outgoing[c as usize])
        .min()
        .unwrap_or(0);
    if min_outgoing < subcliques && !cls.heg_ids.is_empty() {
        return Err(DeltaColoringError::InvariantViolated(format!(
            "Lemma 12 violated: a C_HEG clique has only {min_outgoing} outgoing F2 edges"
        )));
    }
    let _ = heg_set;
    ledger.charge_constant("phase1/F2 rearrangement", 2);

    Ok(BalancedMatching {
        edges: f2,
        stats: Phase1Stats {
            f1_size: f1.len(),
            hyper_vertices: n_subs as usize,
            hyper_edges: edge_meta.len(),
            delta_h: stats_dh,
            r_h: stats_rh,
            f2_size: grab.len(),
            min_outgoing,
            matching_rounds,
            heg_rounds,
        },
    })
}
