//! Smoke tests for the experiment harness: each quick-mode experiment
//! produces a Markdown section with its header and at least one table row.

fn check(id: &str, section: &str) {
    assert!(
        section.starts_with(&format!("## {}", id.to_uppercase())),
        "{id}: section must start with its header, got: {:.60}",
        section
    );
    let rows = section.lines().filter(|l| l.starts_with('|')).count();
    assert!(rows >= 3, "{id}: expected a table with rows, got {rows} pipe lines");
}

#[test]
fn quick_experiments_produce_tables() {
    // The cheap experiments in quick mode; the expensive ones (e1-e4) are
    // exercised by the `experiments` binary runs recorded in EXPERIMENTS.md.
    for (id, f) in delta_bench::experiments::all() {
        if ["e6", "e7", "e9", "e12"].contains(&id) {
            check(id, &f(true));
        }
    }
}

#[test]
fn experiment_registry_is_complete_and_unique() {
    let all = delta_bench::experiments::all();
    assert_eq!(all.len(), 12);
    let mut ids: Vec<&str> = all.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 12, "duplicate experiment ids");
}
