//! Smoke tests for the experiment harness: each quick-mode experiment
//! produces a Markdown section with its header, at least one table row,
//! and a well-formed machine-readable record.

use serde::Value;

fn check(id: &str, out: &delta_bench::experiments::ExperimentOutput) {
    let section = &out.markdown;
    assert!(
        section.starts_with(&format!("## {}", id.to_uppercase())),
        "{id}: section must start with its header, got: {:.60}",
        section
    );
    let rows = section.lines().filter(|l| l.starts_with('|')).count();
    assert!(
        rows >= 3,
        "{id}: expected a table with rows, got {rows} pipe lines"
    );

    // The record must carry the documented fields and survive a JSON
    // round trip.
    let json = serde::json::to_string(&out.data);
    let back = serde::json::parse(&json).expect("record is valid JSON");
    assert_eq!(back.field("name").unwrap(), &Value::Str(id.to_string()));
    for field in ["params", "series", "fit", "per_phase_rounds"] {
        back.field(field)
            .unwrap_or_else(|e| panic!("{id}: missing `{field}`: {e}"));
    }
    let Value::Map(series) = back.field("series").unwrap() else {
        panic!("{id}: series must be an object");
    };
    assert!(!series.is_empty(), "{id}: at least one series");
}

#[test]
fn quick_experiments_produce_tables() {
    // The cheap experiments in quick mode; the expensive ones (e1-e4) are
    // exercised by the `experiments` binary runs recorded in EXPERIMENTS.md.
    for (id, f) in delta_bench::experiments::all() {
        if ["e6", "e7", "e9", "e12"].contains(&id) {
            check(id, &f(true));
        }
    }
}

#[test]
fn pipeline_experiments_record_per_phase_rounds() {
    let (_, e6) = delta_bench::experiments::all()
        .into_iter()
        .find(|(id, _)| *id == "e6")
        .expect("e6 registered");
    let out = e6(true);
    let Value::Map(phases) = out.data.field("per_phase_rounds").unwrap().clone() else {
        panic!("per_phase_rounds must be an object");
    };
    assert!(
        !phases.is_empty(),
        "e6 runs the pipeline, so phases must be recorded"
    );
    assert!(
        phases.iter().any(|(p, _)| p.contains("phase1")),
        "expected a phase1 entry, got {:?}",
        phases.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>()
    );
}

#[test]
fn experiment_registry_is_complete_and_unique() {
    let all = delta_bench::experiments::all();
    assert_eq!(all.len(), 13);
    let mut ids: Vec<&str> = all.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 13, "duplicate experiment ids");
}
