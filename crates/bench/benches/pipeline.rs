//! Criterion wall-time benchmarks: one group per experiment family.
//!
//! Round counts are the primary reproduction metric (see the `experiments`
//! binary); these benches track the *wall time* of the implementations so
//! regressions in the substrates are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_core::{
    color_deterministic, color_deterministic_probed, color_randomized, Config, RandConfig,
};
use graphgen::generators::{self, HardCliqueParams};
use hypergraph::generators::random_hypergraph;
use localsim::{NullSink, Probe, RecordingSink};

fn hard(cliques: usize, delta: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques(&HardCliqueParams {
        cliques,
        delta,
        external_per_vertex: 1,
        seed,
    })
    .expect("bench instance")
}

/// E1/E3 wall time: the full pipelines on a small hard instance.
fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for m in [34usize, 68] {
        let inst = hard(m, 16, 7);
        group.bench_with_input(BenchmarkId::new("deterministic", m), &inst, |b, inst| {
            b.iter(|| color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("randomized", m), &inst, |b, inst| {
            b.iter(|| color_randomized(&inst.graph, &RandConfig::for_delta(16, 3)).unwrap());
        });
    }
    group.finish();
}

/// E4 wall time: HEG solvers.
fn bench_heg(c: &mut Criterion) {
    let mut group = c.benchmark_group("heg");
    group.sample_size(10);
    for n in [1024usize, 8192] {
        let h = random_hypergraph(n, 8, 4, 5).unwrap();
        group.bench_with_input(BenchmarkId::new("augmenting", n), &h, |b, h| {
            b.iter(|| hypergraph::heg_augmenting(h).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("token_walk", n), &h, |b, h| {
            b.iter(|| hypergraph::heg_token_walk(h, 3).unwrap());
        });
    }
    group.finish();
}

/// E9/E10 wall time: the distributed primitives.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(10);
    let g = generators::random_regular(2048, 8, 11);
    group.bench_function("maximal_matching_det_direct", |b| {
        b.iter(|| primitives::matching::maximal_matching_det_direct(&g).unwrap());
    });
    group.bench_function("mis_luby", |b| {
        b.iter(|| primitives::mis::mis_luby(&g, 5).unwrap());
    });
    group.bench_function("delta_plus_one_coloring", |b| {
        b.iter(|| primitives::linial::delta_plus_one_coloring(&g, None).unwrap());
    });
    group.bench_function("degree_split", |b| {
        b.iter(|| primitives::split::degree_split(&g, 8).unwrap());
    });
    group.finish();
}

/// E6 wall time: baselines on the same instance.
fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let inst = hard(34, 16, 9);
    group.bench_function("delta_plus_one", |b| {
        b.iter(|| baselines::delta_plus_one(&inst.graph).unwrap());
    });
    group.bench_function("global_stalling", |b| {
        b.iter(|| baselines::global_stalling(&inst.graph).unwrap());
    });
    group.bench_function("brooks_sequential", |b| {
        b.iter(|| baselines::brooks_sequential(&inst.graph).unwrap());
    });
    group.finish();
}

/// Telemetry overhead: the deterministic pipeline probe-free, with a
/// probe nobody listens to (NullSink), and with full in-memory recording.
/// The first two must be indistinguishable; the third bounds the cost of
/// `--profile`.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    let inst = hard(34, 16, 7);
    group.bench_function("probe_free", |b| {
        b.iter(|| color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap());
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| {
            let probe = Probe::from_sink(NullSink);
            color_deterministic_probed(&inst.graph, &Config::for_delta(16), &probe).unwrap()
        });
    });
    group.bench_function("recording_sink", |b| {
        b.iter(|| {
            let probe = Probe::from_sink(RecordingSink::new());
            color_deterministic_probed(&inst.graph, &Config::for_delta(16), &probe).unwrap()
        });
    });
    group.finish();
}

/// Network decomposition and CONGEST variants.
fn bench_extras(c: &mut Criterion) {
    let mut group = c.benchmark_group("extras");
    group.sample_size(10);
    let g = generators::random_regular(1024, 6, 13);
    group.bench_function("linial_saks_decomposition", |b| {
        b.iter(|| primitives::netdecomp::linial_saks(&g, 3));
    });
    group.bench_function("congest_delta_plus_one", |b| {
        b.iter(|| primitives::congest_coloring::congest_delta_plus_one(&g, 3).unwrap());
    });
    group.bench_function("congest_mis", |b| {
        b.iter(|| primitives::congest_mis::congest_mis(&g, 3).unwrap());
    });
    group.bench_function("heg_blocking", |b| {
        let h = random_hypergraph(2048, 8, 4, 5).unwrap();
        b.iter(|| hypergraph::heg_blocking(&h).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipelines,
    bench_heg,
    bench_primitives,
    bench_baselines,
    bench_telemetry_overhead,
    bench_extras
);
criterion_main!(benches);
