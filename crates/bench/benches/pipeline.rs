//! Pipeline-layer benchmarks: the ACD friend-graph kernel and the full
//! pipelines at several worker-pool widths.
//!
//! Two families:
//!
//! * `acd` — the blocked-bitmap friend-graph kernel (`compute_acd`)
//!   against the pre-PR per-edge neighborhood-merge kernel
//!   (`compute_acd_reference`), on dense instances up to `n ≥ 4096`. Both
//!   kernels are bit-identical by construction; this bench *asserts* that
//!   on every instance before timing, so the speedup is never measured
//!   against a diverged baseline.
//! * `pipeline` — end-to-end deterministic and randomized runs at
//!   `threads ∈ {1, 2, 4}` (`seq`/`par2`/`par4`), on a dense circulant
//!   instance and on a shattering-heavy configuration (`defer_radius = 5`
//!   leaves real leftover components for the pool). Colorings are checked
//!   identical across thread counts before timing.
//!
//! Usage (a harness-free bench binary):
//!
//! ```text
//! cargo bench -p delta-bench --bench pipeline                      # full, table
//! cargo bench -p delta-bench --bench pipeline -- --json BENCH_pipeline.json
//! cargo bench -p delta-bench --bench pipeline -- --smoke --json out.json  # CI
//! ```
//!
//! The JSON report (`BENCH_pipeline.json`) carries every measured case
//! plus per-instance `merge_mean_ns / blocked_mean_ns` ACD speedups; see
//! `docs/PERFORMANCE.md` for the schema.

use acd::{compute_acd, compute_acd_reference, kernel, AcdParams};
use criterion::{measure, Measurement};
use delta_core::{
    color_deterministic, color_randomized, color_randomized_probed, Config, RandConfig,
};
use graphgen::generators::{self, BlueprintKind, HardCliqueParams};
use graphgen::Graph;
use localsim::Probe;
use serde::{json, Value};

fn circulant(cliques: usize, delta: usize, seed: u64) -> Graph {
    generators::hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques,
            delta,
            external_per_vertex: 1,
            seed,
        },
        BlueprintKind::Circulant,
    )
    .expect("bench instance")
    .graph
}

/// Shattering-heavy randomized config: `defer_radius = 5` leaves the
/// post-shattering phase with real leftover components to schedule.
fn shattering_config(seed: u64, threads: usize) -> RandConfig {
    let mut config = RandConfig::for_delta(16, seed);
    config.defer_radius = 5;
    config.base.threads = threads;
    config
}

struct AcdCase {
    instance: &'static str,
    n: usize,
    kernel: &'static str,
    m: Measurement,
}

struct PipelineCase {
    pipeline: &'static str,
    instance: &'static str,
    n: usize,
    variant: &'static str,
    m: Measurement,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let smoke = test_mode || args.iter().any(|a| a == "--smoke");
    // `cargo bench` runs with cwd = crates/bench; resolve relative --json
    // paths against the workspace root so `--json BENCH_pipeline.json`
    // lands at the repo root regardless of invocation directory.
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|p| {
            let p = std::path::Path::new(p);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        });

    let samples = if smoke { 3 } else { 5 };

    // --- ACD kernels: blocked bitmaps vs per-edge neighborhood merge. ---
    // Circulant hard-clique instances are the dense regime the kernel
    // targets: every vertex sits in a Δ-clique, so each friend-edge test
    // scans Θ(Δ) neighbors under the merge kernel. The Δ = 63 instance
    // runs the paper's own parameter regime (`AcdParams::paper`), where
    // neighborhoods are long enough for the kernel gap to dominate.
    let acd_instances: Vec<(&'static str, Graph)> = if smoke {
        vec![("circulant-d16", circulant(40, 16, 7))]
    } else {
        vec![
            ("circulant-d16", circulant(64, 16, 7)),
            ("circulant-d16", circulant(256, 16, 7)),
            ("circulant-d63", circulant(136, 63, 7)),
        ]
    };

    let mut acd_cases: Vec<AcdCase> = Vec::new();
    for (instance, g) in &acd_instances {
        let n = g.n();
        let params = AcdParams::for_delta(g.max_degree());
        // Bit-identity micro-assert: never time a diverged baseline.
        assert_eq!(
            compute_acd(g, &params),
            compute_acd_reference(g, &params),
            "blocked kernel diverged from the merge kernel on {instance}/n={n}"
        );
        let mut push = |kernel: &'static str, m: Measurement| {
            println!(
                "acd/{instance}/n={n}/{kernel}: mean {:.3} ms, min {:.3} ms",
                m.mean_ns / 1e6,
                m.min_ns / 1e6
            );
            acd_cases.push(AcdCase {
                instance,
                n,
                kernel,
                m,
            });
        };
        // The kernels in isolation: the friend-edge computation the
        // rewrite targets.
        push(
            "kernel-blocked",
            measure(test_mode, samples, |b| {
                b.iter(|| kernel::friend_graph(g, &params))
            }),
        );
        push(
            "kernel-merge",
            measure(test_mode, samples, |b| {
                b.iter(|| kernel::friend_graph_reference(g, &params))
            }),
        );
        // The full decomposition (kernel + shared postprocessing).
        push(
            "full-blocked",
            measure(test_mode, samples, |b| b.iter(|| compute_acd(g, &params))),
        );
        push(
            "full-merge",
            measure(test_mode, samples, |b| {
                b.iter(|| compute_acd_reference(g, &params))
            }),
        );
    }

    let mut acd_speedups: Vec<(String, usize, f64)> = Vec::new();
    for (instance, g) in &acd_instances {
        for scope in ["kernel", "full"] {
            let mean_of = |kernel: String| {
                acd_cases
                    .iter()
                    .find(|c| {
                        c.instance == *instance && c.n == g.n() && c.kernel == kernel.as_str()
                    })
                    .map(|c| c.m.mean_ns)
            };
            if let (Some(merge), Some(blocked)) = (
                mean_of(format!("{scope}-merge")),
                mean_of(format!("{scope}-blocked")),
            ) {
                let s = merge / blocked;
                println!(
                    "acd/{instance}/n={}/{scope}: merge/blocked speedup {s:.2}x",
                    g.n()
                );
                acd_speedups.push((format!("{instance}/n={}/{scope}", g.n()), g.n(), s));
            }
        }
    }

    // --- End-to-end pipelines at several pool widths. ---
    let pipe_cliques = if smoke { 40 } else { 80 };
    let g = circulant(pipe_cliques, 16, 11);
    let n = g.n();
    let thread_variants = [("seq", 1usize), ("par2", 2), ("par4", 4)];

    // Colorings must agree across thread counts before anything is timed.
    let det_ref = {
        let mut config = Config::for_delta(16);
        config.threads = 1;
        color_deterministic(&g, &config).expect("bench instance colors")
    };
    let rand_ref = color_randomized_probed(&g, &shattering_config(3, 1), &Probe::disabled())
        .expect("bench instance colors");
    let shat_ref = rand_ref.coloring.clone();
    for (_, threads) in &thread_variants[1..] {
        let mut config = Config::for_delta(16);
        config.threads = *threads;
        let det = color_deterministic(&g, &config).unwrap();
        assert_eq!(
            det_ref.coloring, det.coloring,
            "deterministic pipeline diverged at threads={threads}"
        );
        let shat = color_randomized_probed(&g, &shattering_config(3, *threads), &Probe::disabled())
            .unwrap();
        assert_eq!(
            shat_ref, shat.coloring,
            "randomized pipeline diverged at threads={threads}"
        );
    }

    let mut pipe_cases: Vec<PipelineCase> = Vec::new();
    let mut push = |pipeline: &'static str, instance: &'static str, variant, m: Measurement| {
        println!(
            "pipeline/{pipeline}/{instance}/n={n}/{variant}: mean {:.3} ms, min {:.3} ms",
            m.mean_ns / 1e6,
            m.min_ns / 1e6
        );
        pipe_cases.push(PipelineCase {
            pipeline,
            instance,
            n,
            variant,
            m,
        });
    };
    for (variant, threads) in thread_variants {
        let mut det_config = Config::for_delta(16);
        det_config.threads = threads;
        push(
            "deterministic",
            "circulant",
            variant,
            measure(test_mode, samples, |b| {
                b.iter(|| color_deterministic(&g, &det_config).unwrap())
            }),
        );
        let rand_config = {
            let mut c = RandConfig::for_delta(16, 3);
            c.base.threads = threads;
            c
        };
        push(
            "randomized",
            "circulant",
            variant,
            measure(test_mode, samples, |b| {
                b.iter(|| color_randomized(&g, &rand_config).unwrap())
            }),
        );
        let shat_config = shattering_config(3, threads);
        push(
            "randomized",
            "shattering",
            variant,
            measure(test_mode, samples, |b| {
                b.iter(|| color_randomized(&g, &shat_config).unwrap())
            }),
        );
    }

    if let Some(path) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            (
                "mode".to_string(),
                Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
            ),
            ("samples".to_string(), Value::U64(samples as u64)),
            (
                "acd_cases".to_string(),
                Value::Seq(
                    acd_cases
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("instance".to_string(), Value::Str(c.instance.to_string())),
                                ("n".to_string(), Value::U64(c.n as u64)),
                                ("kernel".to_string(), Value::Str(c.kernel.to_string())),
                                ("mean_ns".to_string(), Value::F64(c.m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(c.m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "acd_merge_over_blocked_speedups".to_string(),
                Value::Seq(
                    acd_speedups
                        .iter()
                        .map(|(key, n, s)| {
                            Value::Map(vec![
                                ("case".to_string(), Value::Str(key.clone())),
                                ("n".to_string(), Value::U64(*n as u64)),
                                ("speedup".to_string(), Value::F64(*s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pipeline_cases".to_string(),
                Value::Seq(
                    pipe_cases
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("pipeline".to_string(), Value::Str(c.pipeline.to_string())),
                                ("instance".to_string(), Value::Str(c.instance.to_string())),
                                ("n".to_string(), Value::U64(c.n as u64)),
                                ("variant".to_string(), Value::Str(c.variant.to_string())),
                                ("mean_ns".to_string(), Value::F64(c.m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(c.m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        use std::io::Write as _;
        let mut file = std::fs::File::create(&path).expect("create bench json");
        file.write_all(json::to_string(&report).as_bytes())
            .expect("write bench json");
        file.write_all(b"\n").expect("write bench json");
        println!("wrote {}", path.display());
    }
}
