//! Supervisor overhead benchmarks: what phase checkpointing costs on top
//! of a plain pipeline run, and what a tail resume saves.
//!
//! Cases (both pipelines, shattering-heavy randomized config):
//!
//! * `plain` — passive supervisor, no checkpointing (the baseline every
//!   unsupervised run takes).
//! * `checkpointed` — a snapshot serialized after every phase boundary.
//! * `resume-tail` — resuming from the last boundary snapshot, i.e. the
//!   cost of replaying the deterministic derivations plus the live tail.
//! * `snapshot-load` — deserializing the largest boundary snapshot.
//!
//! Colorings are asserted identical between plain and checkpointed runs
//! before anything is timed, and the resumed coloring must match the
//! uninterrupted one — the overhead numbers are only meaningful if the
//! supervised run is bit-identical.
//!
//! ```text
//! cargo bench -p delta-bench --bench supervisor                    # full, table
//! cargo bench -p delta-bench --bench supervisor -- --json BENCH_supervisor.json
//! cargo bench -p delta-bench --bench supervisor -- --smoke --json out.json  # CI
//! ```

use criterion::{measure, Measurement};
use delta_core::{
    drive_deterministic, drive_randomized, load_snapshot, Config, PhaseCursor, RandConfig,
    RunOutcome, Snapshot, Supervisor,
};
use graphgen::generators::{self, BlueprintKind, HardCliqueParams};
use graphgen::Graph;
use localsim::Probe;
use serde::{json, Value};

fn circulant(cliques: usize, seed: u64) -> Graph {
    generators::hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques,
            delta: 16,
            external_per_vertex: 1,
            seed,
        },
        BlueprintKind::Circulant,
    )
    .expect("bench instance")
    .graph
}

fn shattering_config(seed: u64) -> RandConfig {
    let mut config = RandConfig::for_delta(16, seed);
    config.defer_radius = 5;
    config
}

fn checkpointing(dir: &std::path::Path) -> Supervisor {
    Supervisor {
        checkpoint_dir: Some(dir.to_path_buf()),
        ..Supervisor::passive()
    }
}

fn complete<R>(outcome: RunOutcome<R>) -> R {
    match outcome {
        RunOutcome::Complete { report, .. } => report,
        RunOutcome::Suspended { .. } | RunOutcome::Failed(_) => {
            panic!("bench runs must complete")
        }
    }
}

struct Case {
    pipeline: &'static str,
    variant: &'static str,
    m: Measurement,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let smoke = test_mode || args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|p| {
            let p = std::path::Path::new(p);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        });

    let samples = if smoke { 3 } else { 5 };
    let cliques = if smoke { 40 } else { 80 };
    let g = circulant(cliques, 11);
    let n = g.n();
    let probe = Probe::disabled();
    let ckpt_dir =
        std::env::temp_dir().join(format!("delta-bench-supervisor-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let sup_ckpt = checkpointing(&ckpt_dir);
    let sup_plain = Supervisor::passive();

    let rand_config = shattering_config(3);
    let det_config = Config::for_delta(16);

    // Bit-identity preflight: supervised and plain runs must agree, and a
    // tail resume must reproduce the uninterrupted coloring.
    let plain_ref = complete(
        drive_randomized(&g, &rand_config, None, &probe, &sup_plain, None).expect("plain run"),
    );
    let ckpt_ref = complete(
        drive_randomized(&g, &rand_config, None, &probe, &sup_ckpt, None).expect("supervised run"),
    );
    assert_eq!(
        plain_ref.coloring, ckpt_ref.coloring,
        "checkpointing changed the randomized coloring"
    );
    let tail_snapshot: Snapshot = {
        let path = ckpt_dir.join(format!(
            "checkpoint-{:02}-{}.json",
            PhaseCursor::PostProcessing.ordinal(),
            PhaseCursor::PostProcessing.slug()
        ));
        load_snapshot(&path).expect("tail snapshot")
    };
    let resumed = complete(
        drive_randomized(
            &g,
            &rand_config,
            None,
            &probe,
            &sup_plain,
            Some(tail_snapshot.clone()),
        )
        .expect("resumed run"),
    );
    assert_eq!(
        plain_ref.coloring, resumed.coloring,
        "tail resume diverged from the uninterrupted run"
    );

    let det_plain_ref = complete(
        drive_deterministic(&g, &det_config, &probe, &sup_plain, None).expect("plain det run"),
    );
    let det_ckpt_ref = complete(
        drive_deterministic(&g, &det_config, &probe, &sup_ckpt, None).expect("supervised det run"),
    );
    assert_eq!(
        det_plain_ref.coloring, det_ckpt_ref.coloring,
        "checkpointing changed the deterministic coloring"
    );

    let mut cases: Vec<Case> = Vec::new();
    let mut push = |pipeline: &'static str, variant: &'static str, m: Measurement| {
        println!(
            "supervisor/{pipeline}/n={n}/{variant}: mean {:.3} ms, min {:.3} ms",
            m.mean_ns / 1e6,
            m.min_ns / 1e6
        );
        cases.push(Case {
            pipeline,
            variant,
            m,
        });
    };

    push(
        "randomized",
        "plain",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                complete(
                    drive_randomized(&g, &rand_config, None, &probe, &sup_plain, None).unwrap(),
                )
            })
        }),
    );
    push(
        "randomized",
        "checkpointed",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                complete(drive_randomized(&g, &rand_config, None, &probe, &sup_ckpt, None).unwrap())
            })
        }),
    );
    push(
        "randomized",
        "resume-tail",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                complete(
                    drive_randomized(
                        &g,
                        &rand_config,
                        None,
                        &probe,
                        &sup_plain,
                        Some(tail_snapshot.clone()),
                    )
                    .unwrap(),
                )
            })
        }),
    );
    push(
        "randomized",
        "snapshot-load",
        measure(test_mode, samples, |b| {
            let path = ckpt_dir.join(format!(
                "checkpoint-{:02}-{}.json",
                PhaseCursor::PostProcessing.ordinal(),
                PhaseCursor::PostProcessing.slug()
            ));
            b.iter(|| load_snapshot(&path).unwrap())
        }),
    );
    push(
        "deterministic",
        "plain",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                complete(drive_deterministic(&g, &det_config, &probe, &sup_plain, None).unwrap())
            })
        }),
    );
    push(
        "deterministic",
        "checkpointed",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                complete(drive_deterministic(&g, &det_config, &probe, &sup_ckpt, None).unwrap())
            })
        }),
    );

    let mut overheads: Vec<(String, f64)> = Vec::new();
    for pipeline in ["randomized", "deterministic"] {
        let mean_of = |variant: &str| {
            cases
                .iter()
                .find(|c| c.pipeline == pipeline && c.variant == variant)
                .map(|c| c.m.mean_ns)
        };
        if let (Some(plain), Some(ckpt)) = (mean_of("plain"), mean_of("checkpointed")) {
            let o = ckpt / plain;
            println!("supervisor/{pipeline}/n={n}: checkpointed/plain overhead {o:.3}x");
            overheads.push((pipeline.to_string(), o));
        }
    }

    let _ = std::fs::remove_dir_all(&ckpt_dir);

    if let Some(path) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            (
                "mode".to_string(),
                Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
            ),
            ("samples".to_string(), Value::U64(samples as u64)),
            ("n".to_string(), Value::U64(n as u64)),
            (
                "cases".to_string(),
                Value::Seq(
                    cases
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("pipeline".to_string(), Value::Str(c.pipeline.to_string())),
                                ("variant".to_string(), Value::Str(c.variant.to_string())),
                                ("mean_ns".to_string(), Value::F64(c.m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(c.m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "checkpointed_over_plain_overheads".to_string(),
                Value::Seq(
                    overheads
                        .iter()
                        .map(|(pipeline, o)| {
                            Value::Map(vec![
                                ("pipeline".to_string(), Value::Str(pipeline.clone())),
                                ("overhead".to_string(), Value::F64(*o)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        use std::io::Write as _;
        let mut file = std::fs::File::create(&path).expect("create bench json");
        file.write_all(json::to_string(&report).as_bytes())
            .expect("write bench json");
        file.write_all(b"\n").expect("write bench json");
        println!("wrote {}", path.display());
    }
}
