//! Telemetry-overhead bench: what instrumentation costs when nobody (or
//! almost nobody) is listening.
//!
//! Three variants of the same clique state-exchange workload:
//!
//! * `bare` — disabled probe, no metrics hub: the inert-instrumentation
//!   path every plain run takes (no timestamps, no event construction);
//! * `metrics` — a [`MetricsHub`] attached but no event sink: counters,
//!   watermarks, and the per-round latency histograms are live;
//! * `events` — a [`NullSink`] probe and a hub: per-round events are
//!   built and discarded on top of the metrics.
//!
//! The acceptance gate is `metrics`: collecting metrics with no sink
//! attached must add **less than 5%** over `bare` on the full-size
//! clique (n = 2000, `seq` stepping). The assertion only fires in full
//! mode — smoke/test runs use tiny sizes on noisy CI cores, where one
//! scheduler hiccup swamps a single-digit percentage.
//!
//! ```text
//! cargo bench -p delta-bench --bench telemetry
//! cargo bench -p delta-bench --bench telemetry -- --smoke --json out.json
//! ```

use std::sync::Arc;

use criterion::{measure, Measurement};
use graphgen::generators;
use localsim::{Executor, LocalAlgorithm, MetricsHub, NodeCtx, NullSink, Probe, Transition};
use serde::{json, Value};

/// State-exchange flood: propagate the running max for `t` rounds (the
/// same workload the executors bench uses for its clique cases).
struct StateFlood {
    t: u64,
}

impl LocalAlgorithm for StateFlood {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let m = nbrs.iter().copied().chain([*state]).max().unwrap_or(*state);
        if ctx.round >= self.t {
            Transition::Halt(m)
        } else {
            Transition::Continue(m)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let smoke = test_mode || args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|p| {
            let p = std::path::Path::new(p);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        });

    let samples = if smoke { 3 } else { 5 };
    let clique_n = if smoke { 192 } else { 2000 };
    let t = 3u64;
    let budget = t + 2;
    let g = generators::complete(clique_n);
    let algo = StateFlood { t };

    let mut cases: Vec<(&'static str, Measurement)> = Vec::new();
    let mut push = |variant: &'static str, m: Measurement| {
        println!(
            "telemetry/clique/n={clique_n}/seq/{variant}: mean {:.3} ms, min {:.3} ms",
            m.mean_ns / 1e6,
            m.min_ns / 1e6
        );
        cases.push((variant, m));
    };

    push(
        "bare",
        measure(test_mode, samples, |b| {
            b.iter(|| Executor::new(&g).run(&algo, budget).unwrap())
        }),
    );

    // One hub reused across iterations: metric values accumulate, but the
    // per-observation cost — the thing being measured — is constant.
    let hub = Arc::new(MetricsHub::new());
    push(
        "metrics",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                Executor::new(&g)
                    .with_probe(Probe::disabled().with_metrics(hub.clone()))
                    .run(&algo, budget)
                    .unwrap()
            })
        }),
    );

    let events_hub = Arc::new(MetricsHub::new());
    push(
        "events",
        measure(test_mode, samples, |b| {
            b.iter(|| {
                Executor::new(&g)
                    .with_probe(Probe::new(Arc::new(NullSink)).with_metrics(events_hub.clone()))
                    .run(&algo, budget)
                    .unwrap()
            })
        }),
    );

    let mean_of = |variant: &str| {
        cases
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|(_, m)| m.mean_ns)
            .expect("variant measured")
    };
    let metrics_overhead_pct = 100.0 * (mean_of("metrics") / mean_of("bare") - 1.0);
    let events_overhead_pct = 100.0 * (mean_of("events") / mean_of("bare") - 1.0);
    println!("telemetry/clique: metrics-hub overhead {metrics_overhead_pct:+.2}% over bare");
    println!("telemetry/clique: events+metrics overhead {events_overhead_pct:+.2}% over bare");

    if let Some(path) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            (
                "mode".to_string(),
                Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
            ),
            ("samples".to_string(), Value::U64(samples as u64)),
            ("n".to_string(), Value::U64(clique_n as u64)),
            (
                "cases".to_string(),
                Value::Seq(
                    cases
                        .iter()
                        .map(|(variant, m)| {
                            Value::Map(vec![
                                ("topology".to_string(), Value::Str("clique".to_string())),
                                ("n".to_string(), Value::U64(clique_n as u64)),
                                ("variant".to_string(), Value::Str((*variant).to_string())),
                                ("mean_ns".to_string(), Value::F64(m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics_overhead_pct".to_string(),
                Value::F64(metrics_overhead_pct),
            ),
            (
                "events_overhead_pct".to_string(),
                Value::F64(events_overhead_pct),
            ),
        ]);
        std::fs::write(&path, json::to_string(&report) + "\n")
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }

    // The gate: with a hub but no sink, metrics must stay under 5%.
    if !smoke {
        assert!(
            metrics_overhead_pct < 5.0,
            "metrics instrumentation added {metrics_overhead_pct:.2}% to the bare \
             clique n={clique_n} seq run (budget: < 5%)"
        );
    }
}
