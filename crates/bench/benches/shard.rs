//! Sharded-runtime scaling benchmark: wall-clock and rounds of a wire
//! coloring as the shard count grows, against the in-process executor.
//!
//! Honest caveat, embedded in the JSON report: everything here runs on
//! **one machine** over loopback TCP, so added shards add framing and
//! syscall cost per round without adding compute capacity — wall-clock
//! is *expected* to be slower than in-process. What the numbers measure
//! is the per-round coordination overhead (the price of running the
//! LOCAL algorithm actually distributed), not a speedup claim.
//!
//! Outputs are asserted bit-identical across every variant before
//! anything is timed.
//!
//! ```text
//! cargo bench -p delta-bench --bench shard                    # full, table
//! cargo bench -p delta-bench --bench shard -- --json BENCH_shard.json
//! cargo bench -p delta-bench --bench shard -- --smoke --json out.json  # CI
//! ```

use criterion::{measure, Measurement};
use graphgen::generators;
use localsim::{Executor, ShardedExecutor, WireAlgo};
use serde::{json, Value};

const MAX_ROUNDS: u64 = 100_000;

struct Case {
    variant: &'static str,
    shards: u64,
    m: Measurement,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let smoke = test_mode || args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|p| {
            let p = std::path::Path::new(p);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        });

    let samples = if smoke { 3 } else { 5 };
    let n = if smoke { 600 } else { 3000 };
    let g = generators::gnp(n, 8.0 / n as f64, 17);
    let algo = WireAlgo::Rand { seed: 7 };

    // Bit-identity preflight across every shard count.
    let reference = Executor::new(&g).run(&algo, MAX_ROUNDS).expect("reference");
    for shards in [1usize, 2, 4] {
        let run = ShardedExecutor::new(&g)
            .with_shards(shards)
            .run(algo, MAX_ROUNDS)
            .expect("sharded run");
        assert_eq!(
            run.outputs, reference.outputs,
            "{shards}-shard outputs diverged from the in-process executor"
        );
        assert_eq!(
            run.rounds, reference.rounds,
            "{shards}-shard round count diverged"
        );
    }

    let mut cases: Vec<Case> = Vec::new();
    let mut push = |variant: &'static str, shards: u64, rounds: u64, m: Measurement| {
        println!(
            "shard/n={n}/{variant}: mean {:.3} ms, min {:.3} ms ({rounds} rounds)",
            m.mean_ns / 1e6,
            m.min_ns / 1e6
        );
        cases.push(Case { variant, shards, m });
    };

    push(
        "in-process",
        0,
        reference.rounds,
        measure(test_mode, samples, |b| {
            b.iter(|| Executor::new(&g).run(&algo, MAX_ROUNDS).unwrap())
        }),
    );
    for (variant, shards) in [("shards-1", 1usize), ("shards-2", 2), ("shards-4", 4)] {
        push(
            variant,
            shards as u64,
            reference.rounds,
            measure(test_mode, samples, |b| {
                b.iter(|| {
                    ShardedExecutor::new(&g)
                        .with_shards(shards)
                        .run(algo, MAX_ROUNDS)
                        .unwrap()
                })
            }),
        );
    }

    let base = cases[0].m.mean_ns;
    for c in cases.iter().skip(1) {
        println!(
            "shard/n={n}/{}: coordination overhead {:.2}x over in-process",
            c.variant,
            c.m.mean_ns / base
        );
    }

    if let Some(path) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            (
                "mode".to_string(),
                Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
            ),
            ("samples".to_string(), Value::U64(samples as u64)),
            ("n".to_string(), Value::U64(n as u64)),
            // All variants run the same round count (bit-identity is
            // asserted above), so it lives at report level — keeping it
            // out of the per-case identity benchdiff matches on.
            ("rounds".to_string(), Value::U64(reference.rounds)),
            (
                "caveat".to_string(),
                Value::Str(
                    "single-machine loopback: shards add per-round framing/syscall cost \
                     without adding compute; numbers measure coordination overhead, \
                     not distributed speedup"
                        .to_string(),
                ),
            ),
            (
                "cases".to_string(),
                Value::Seq(
                    cases
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("variant".to_string(), Value::Str(c.variant.to_string())),
                                ("shards".to_string(), Value::U64(c.shards)),
                                ("mean_ns".to_string(), Value::F64(c.m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(c.m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        use std::io::Write as _;
        let mut file = std::fs::File::create(&path).expect("create bench json");
        file.write_all(json::to_string(&report).as_bytes())
            .expect("write bench json");
        file.write_all(b"\n").expect("write bench json");
        println!("wrote {}", path.display());
    }
}
