//! Sharded-runtime scaling benchmark: wall-clock and rounds of a wire
//! coloring as the shard count grows, against the in-process executor.
//!
//! Honest caveat, embedded in the JSON report: everything here runs on
//! **one machine** over loopback TCP, so added shards add framing and
//! syscall cost per round without adding compute capacity — wall-clock
//! is *expected* to be slower than in-process. What the numbers measure
//! is the per-round coordination overhead (the price of running the
//! LOCAL algorithm actually distributed), not a speedup claim.
//!
//! Outputs are asserted bit-identical across every variant before
//! anything is timed.
//!
//! Alongside wall-clock, the report carries a deterministic
//! **wire-traffic series** (`wire_cases`): exact byte counts of the v2
//! wire protocol on a clique — `Init` bytes, steady-state bytes per
//! round, and the delta ghost exchange's sent/suppressed update counts.
//! These are byte-exact across runs, so CI gates them with
//! `benchdiff --metric bytes --threshold 0`: any accidental protocol
//! growth fails the gate.
//!
//! ```text
//! cargo bench -p delta-bench --bench shard                    # full, table
//! cargo bench -p delta-bench --bench shard -- --json BENCH_shard.json
//! cargo bench -p delta-bench --bench shard -- --smoke --json out.json  # CI
//! ```

use std::sync::Arc;

use criterion::{measure, Measurement};
use graphgen::generators;
use localsim::{Executor, MetricsHub, Probe, ShardedExecutor, WireAlgo};
use serde::{json, Value};

const MAX_ROUNDS: u64 = 100_000;

struct Case {
    variant: &'static str,
    shards: u64,
    m: Measurement,
}

struct WireCase {
    algo: String,
    shards: u64,
    rounds: u64,
    init_bytes: u64,
    round_bytes: u64,
    total_sent_bytes: u64,
    total_recv_bytes: u64,
    ghost_updates: u64,
    ghost_suppressed: u64,
}

/// One deterministic sharded run with a metrics hub attached; byte
/// counts come straight off the `shard.*` counters. Steady-state bytes
/// per round excludes the one-time `Init` payload (integer division —
/// exact, reproducible, gateable at threshold 0).
fn measure_wire(g: &graphgen::Graph, algo: WireAlgo, shards: usize) -> WireCase {
    let hub = Arc::new(MetricsHub::new());
    let run = ShardedExecutor::new(g)
        .with_shards(shards)
        .with_probe(Probe::disabled().with_metrics(hub.clone()))
        .run(algo, MAX_ROUNDS)
        .expect("wire measurement run");
    let sent = hub.counter("shard.bytes_sent").get();
    let recv = hub.counter("shard.bytes_recv").get();
    let init = hub.counter("shard.init_bytes").get();
    WireCase {
        algo: algo.to_string(),
        shards: shards as u64,
        rounds: run.rounds,
        init_bytes: init,
        round_bytes: (sent + recv - init) / run.rounds.max(1),
        total_sent_bytes: sent,
        total_recv_bytes: recv,
        ghost_updates: hub.counter("shard.ghost_updates_sent").get(),
        ghost_suppressed: hub.counter("shard.ghost_suppressed").get(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let smoke = test_mode || args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|p| {
            let p = std::path::Path::new(p);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        });

    let samples = if smoke { 3 } else { 5 };
    let n = if smoke { 600 } else { 3000 };
    let g = generators::gnp(n, 8.0 / n as f64, 17);
    let algo = WireAlgo::Rand { seed: 7 };

    // Bit-identity preflight across every shard count.
    let reference = Executor::new(&g).run(&algo, MAX_ROUNDS).expect("reference");
    for shards in [1usize, 2, 4] {
        let run = ShardedExecutor::new(&g)
            .with_shards(shards)
            .run(algo, MAX_ROUNDS)
            .expect("sharded run");
        assert_eq!(
            run.outputs, reference.outputs,
            "{shards}-shard outputs diverged from the in-process executor"
        );
        assert_eq!(
            run.rounds, reference.rounds,
            "{shards}-shard round count diverged"
        );
    }

    let mut cases: Vec<Case> = Vec::new();
    let mut push = |variant: &'static str, shards: u64, rounds: u64, m: Measurement| {
        println!(
            "shard/n={n}/{variant}: mean {:.3} ms, min {:.3} ms ({rounds} rounds)",
            m.mean_ns / 1e6,
            m.min_ns / 1e6
        );
        cases.push(Case { variant, shards, m });
    };

    push(
        "in-process",
        0,
        reference.rounds,
        measure(test_mode, samples, |b| {
            b.iter(|| Executor::new(&g).run(&algo, MAX_ROUNDS).unwrap())
        }),
    );
    for (variant, shards) in [("shards-1", 1usize), ("shards-2", 2), ("shards-4", 4)] {
        push(
            variant,
            shards as u64,
            reference.rounds,
            measure(test_mode, samples, |b| {
                b.iter(|| {
                    ShardedExecutor::new(&g)
                        .with_shards(shards)
                        .run(algo, MAX_ROUNDS)
                        .unwrap()
                })
            }),
        );
    }

    let base = cases[0].m.mean_ns;
    for c in cases.iter().skip(1) {
        println!(
            "shard/n={n}/{}: coordination overhead {:.2}x over in-process",
            c.variant,
            c.m.mean_ns / base
        );
    }

    // Deterministic wire-traffic series: a clique is the worst case for
    // the delta ghost exchange (every vertex is a boundary vertex), so
    // byte counts here bound the protocol's per-round footprint.
    let wn = if smoke { 400 } else { 2000 };
    let wg = generators::complete(wn);
    let mut wire_cases: Vec<WireCase> = Vec::new();
    for algo in [WireAlgo::Rand { seed: 7 }, WireAlgo::Greedy] {
        for shards in [2usize, 4] {
            let w = measure_wire(&wg, algo, shards);
            println!(
                "wire/clique/n={wn}/{}/shards={}: init {} B, {} B/round over {} rounds \
                 ({} ghost update(s), {} suppressed)",
                w.algo,
                w.shards,
                w.init_bytes,
                w.round_bytes,
                w.rounds,
                w.ghost_updates,
                w.ghost_suppressed
            );
            wire_cases.push(w);
        }
    }

    if let Some(path) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            (
                "mode".to_string(),
                Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
            ),
            ("samples".to_string(), Value::U64(samples as u64)),
            ("n".to_string(), Value::U64(n as u64)),
            // All variants run the same round count (bit-identity is
            // asserted above), so it lives at report level — keeping it
            // out of the per-case identity benchdiff matches on.
            ("rounds".to_string(), Value::U64(reference.rounds)),
            (
                "caveat".to_string(),
                Value::Str(
                    "single-machine loopback: shards add per-round framing/syscall cost \
                     without adding compute; numbers measure coordination overhead, \
                     not distributed speedup"
                        .to_string(),
                ),
            ),
            (
                "cases".to_string(),
                Value::Seq(
                    cases
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("variant".to_string(), Value::Str(c.variant.to_string())),
                                ("shards".to_string(), Value::U64(c.shards)),
                                ("mean_ns".to_string(), Value::F64(c.m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(c.m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "wire_cases".to_string(),
                Value::Seq(
                    wire_cases
                        .iter()
                        .map(|w| {
                            Value::Map(vec![
                                ("topology".to_string(), Value::Str("clique".to_string())),
                                ("n".to_string(), Value::U64(wn as u64)),
                                ("algo".to_string(), Value::Str(w.algo.clone())),
                                ("shards".to_string(), Value::U64(w.shards)),
                                ("rounds".to_string(), Value::U64(w.rounds)),
                                ("init_bytes".to_string(), Value::U64(w.init_bytes)),
                                ("round_bytes".to_string(), Value::U64(w.round_bytes)),
                                (
                                    "total_sent_bytes".to_string(),
                                    Value::U64(w.total_sent_bytes),
                                ),
                                (
                                    "total_recv_bytes".to_string(),
                                    Value::U64(w.total_recv_bytes),
                                ),
                                ("ghost_updates".to_string(), Value::U64(w.ghost_updates)),
                                (
                                    "ghost_suppressed".to_string(),
                                    Value::U64(w.ghost_suppressed),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        use std::io::Write as _;
        let mut file = std::fs::File::create(&path).expect("create bench json");
        file.write_all(json::to_string(&report).as_bytes())
            .expect("write bench json");
        file.write_all(b"\n").expect("write bench json");
        println!("wrote {}", path.display());
    }
}
