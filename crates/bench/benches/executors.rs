//! Executor-core micro-benchmarks: topology × executor level × variant.
//!
//! Simulator throughput is the ceiling on how large an `n` the
//! round-complexity scaling experiments can reach, so this bench tracks
//! the three `localsim` executors on representative topologies (sparse
//! path, sparse cycle, dense clique) and pins the perf trajectory in a
//! machine-readable file.
//!
//! Variants per (topology, executor):
//!
//! * `legacy` — a faithful re-implementation of the pre-arena loops
//!   (per-round full-state clone / per-round nested inbox allocation +
//!   per-message binary-search port lookup), so before/after is measured
//!   on the same machine at the same commit;
//! * `seq` — the current allocation-free double-buffered loop;
//! * `par2`/`par4` — the deterministic parallel stepping path.
//!
//! Usage (a harness-free bench binary):
//!
//! ```text
//! cargo bench -p delta-bench --bench executors                      # full matrix, table
//! cargo bench -p delta-bench --bench executors -- --json BENCH_executors.json
//! cargo bench -p delta-bench --bench executors -- --smoke --json out.json  # CI: small sizes
//! ```
//!
//! The JSON report (`BENCH_executors.json`) carries every measured case
//! plus per-(topology, executor) `legacy_mean_ns / seq_mean_ns` speedups;
//! see `docs/PERFORMANCE.md` for the schema and how to read it.

use criterion::{black_box, measure, Measurement};
use graphgen::{generators, Graph, NodeId};
use localsim::{
    broadcast, CongestExecutor, Executor, LocalAlgorithm, MessageExecutor, MessageProgram,
    MsgTransition, NodeCtx, Outgoing, RunResult, SimError, Transition,
};
use serde::{json, Value};

// ---------------------------------------------------------------------------
// Workloads: flood-style programs that keep every node busy for `t` rounds.

/// State-exchange: propagate the running max for `t` rounds.
struct StateFlood {
    t: u64,
}

impl LocalAlgorithm for StateFlood {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let m = nbrs.iter().copied().chain([*state]).max().unwrap_or(*state);
        if ctx.round >= self.t {
            Transition::Halt(m)
        } else {
            Transition::Continue(m)
        }
    }
}

/// Per-port messages: broadcast the running max on every port, `t` rounds.
struct MsgFlood {
    t: u64,
}

impl MessageProgram for MsgFlood {
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> (u64, Vec<Outgoing<u64>>) {
        (ctx.uid, broadcast(ctx.degree(), &ctx.uid))
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut u64,
        inbox: &[Option<u64>],
    ) -> MsgTransition<u64, u64> {
        let m = inbox
            .iter()
            .flatten()
            .copied()
            .chain([*state])
            .max()
            .unwrap_or(*state);
        *state = m;
        if ctx.round >= self.t {
            MsgTransition::HaltAfter(Vec::new(), m)
        } else {
            MsgTransition::Continue(broadcast(ctx.degree(), &m))
        }
    }
}

fn msg_width(m: &u64) -> usize {
    (64 - m.leading_zeros()) as usize
}

// ---------------------------------------------------------------------------
// Legacy executors: the pre-arena loops, reproduced from the seed so the
// "before" side of the comparison is measured live on the same hardware.

/// Pre-PR state-exchange loop: clones all `n` states every round and
/// scans every vertex (halted included).
fn legacy_state_run<A: LocalAlgorithm>(
    graph: &Graph,
    algo: &A,
    max_rounds: u64,
) -> Result<RunResult<A::Output>, SimError> {
    let n = graph.n();
    let ctx = |v: NodeId, round: u64| NodeCtx {
        node: v,
        uid: u64::from(v.0),
        neighbors: graph.neighbors(v),
        round,
        n: graph.n(),
        max_degree: graph.max_degree(),
    };
    let mut states: Vec<A::State> = graph.vertices().map(|v| algo.init(&ctx(v, 0))).collect();
    let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
    let mut live = n;
    let mut rounds = 0;
    while live > 0 {
        if rounds >= max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: live,
            });
        }
        rounds += 1;
        let mut next_states = states.clone();
        let mut nbr_buf: Vec<A::State> = Vec::new();
        for v in graph.vertices() {
            if outputs[v.index()].is_some() {
                continue;
            }
            nbr_buf.clear();
            nbr_buf.extend(graph.neighbors(v).iter().map(|w| states[w.index()].clone()));
            match algo.step(&ctx(v, rounds), &states[v.index()], &nbr_buf) {
                Transition::Continue(s) => next_states[v.index()] = s,
                Transition::Halt(o) => {
                    outputs[v.index()] = Some(o);
                    live -= 1;
                }
            }
        }
        states = next_states;
    }
    Ok(RunResult {
        outputs: outputs.into_iter().map(|o| o.unwrap()).collect(),
        rounds,
    })
}

/// Pre-PR message loop: allocates a fresh `Vec<Vec<Option<Msg>>>` inbox
/// set every round and binary-searches the receiving port per message.
fn legacy_msg_run<P: MessageProgram>(
    graph: &Graph,
    prog: &P,
    max_rounds: u64,
) -> Result<RunResult<P::Output>, SimError> {
    let n = graph.n();
    let ctx = |v: NodeId, round: u64| NodeCtx {
        node: v,
        uid: u64::from(v.0),
        neighbors: graph.neighbors(v),
        round,
        n: graph.n(),
        max_degree: graph.max_degree(),
    };
    let deliver =
        |inboxes: &mut Vec<Vec<Option<P::Msg>>>, v: NodeId, outs: Vec<Outgoing<P::Msg>>| {
            for out in outs {
                let w = graph.neighbors(v)[out.port];
                let back = graph
                    .neighbors(w)
                    .binary_search(&v)
                    .expect("v is a neighbor of w");
                inboxes[w.index()][back] = Some(out.msg);
            }
        };
    let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
    let mut inboxes: Vec<Vec<Option<P::Msg>>> = graph
        .vertices()
        .map(|v| vec![None; graph.degree(v)])
        .collect();
    let mut states: Vec<P::State> = Vec::with_capacity(n);
    {
        let mut first_outs = Vec::with_capacity(n);
        for v in graph.vertices() {
            let (st, outs) = prog.init(&ctx(v, 0));
            states.push(st);
            first_outs.push(outs);
        }
        for (v, outs) in graph.vertices().zip(first_outs) {
            deliver(&mut inboxes, v, outs);
        }
    }
    let mut live = n;
    let mut rounds = 0u64;
    while live > 0 {
        if rounds >= max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: live,
            });
        }
        rounds += 1;
        let mut next: Vec<Vec<Option<P::Msg>>> = graph
            .vertices()
            .map(|v| vec![None; graph.degree(v)])
            .collect();
        for v in graph.vertices() {
            if outputs[v.index()].is_some() {
                continue;
            }
            match prog.step(&ctx(v, rounds), &mut states[v.index()], &inboxes[v.index()]) {
                MsgTransition::Continue(outs) => deliver(&mut next, v, outs),
                MsgTransition::HaltAfter(outs, o) => {
                    deliver(&mut next, v, outs);
                    outputs[v.index()] = Some(o);
                    live -= 1;
                }
            }
        }
        inboxes = next;
    }
    Ok(RunResult {
        outputs: outputs.into_iter().map(|o| o.unwrap()).collect(),
        rounds,
    })
}

/// Pre-PR congest metering: the legacy message loop plus a per-message
/// width/bucket accounting pass through interior mutability.
struct LegacyMetered<'p, P, F> {
    inner: &'p P,
    size_of: F,
    stats: std::cell::RefCell<(usize, u64)>, // (max_bits, total_bits)
}

impl<P: MessageProgram, F: Fn(&P::Msg) -> usize> LegacyMetered<'_, P, F> {
    fn meter(&self, outs: &[Outgoing<P::Msg>]) {
        let mut stats = self.stats.borrow_mut();
        for o in outs {
            let bits = (self.size_of)(&o.msg);
            stats.0 = stats.0.max(bits);
            stats.1 += bits as u64;
        }
    }
}

impl<P: MessageProgram, F: Fn(&P::Msg) -> usize> MessageProgram for LegacyMetered<'_, P, F> {
    type State = P::State;
    type Msg = P::Msg;
    type Output = P::Output;

    fn init(&self, ctx: &NodeCtx) -> (Self::State, Vec<Outgoing<Self::Msg>>) {
        let (st, outs) = self.inner.init(ctx);
        self.meter(&outs);
        (st, outs)
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut Self::State,
        inbox: &[Option<Self::Msg>],
    ) -> MsgTransition<Self::Msg, Self::Output> {
        let t = self.inner.step(ctx, state, inbox);
        match &t {
            MsgTransition::Continue(outs) | MsgTransition::HaltAfter(outs, _) => self.meter(outs),
        }
        t
    }
}

// ---------------------------------------------------------------------------
// The matrix.

struct Case {
    topology: &'static str,
    n: usize,
    executor: &'static str,
    variant: &'static str,
    m: Measurement,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let smoke = test_mode || args.iter().any(|a| a == "--smoke");
    // `cargo bench` runs with cwd = crates/bench; resolve relative --json
    // paths against the workspace root so `--json BENCH_executors.json`
    // lands at the repo root regardless of invocation directory.
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(|p| {
            let p = std::path::Path::new(p);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        });

    let samples = if smoke { 3 } else { 5 };
    let (sparse_n, clique_n) = if smoke { (512, 192) } else { (4096, 2000) };
    let (sparse_rounds, clique_rounds) = (16u64, 3u64);

    let topologies: Vec<(&'static str, Graph, u64)> = vec![
        ("path", generators::path(sparse_n), sparse_rounds),
        ("cycle", generators::cycle(sparse_n), sparse_rounds),
        ("clique", generators::complete(clique_n), clique_rounds),
    ];

    let mut cases: Vec<Case> = Vec::new();
    for (topology, g, t) in &topologies {
        let n = g.n();
        let budget = t + 2;
        let mut push = |executor: &'static str, variant: &'static str, m: Measurement| {
            println!(
                "executors/{topology}/n={n}/{executor}/{variant}: mean {:.3} ms, min {:.3} ms",
                m.mean_ns / 1e6,
                m.min_ns / 1e6
            );
            cases.push(Case {
                topology,
                n,
                executor,
                variant,
                m,
            });
        };

        // State-exchange executor.
        let algo = StateFlood { t: *t };
        push(
            "state",
            "legacy",
            measure(test_mode, samples, |b| {
                b.iter(|| legacy_state_run(g, &algo, budget).unwrap())
            }),
        );
        push(
            "state",
            "seq",
            measure(test_mode, samples, |b| {
                b.iter(|| Executor::new(g).run(&algo, budget).unwrap())
            }),
        );
        for (variant, k) in [("par2", 2usize), ("par4", 4)] {
            push(
                "state",
                variant,
                measure(test_mode, samples, |b| {
                    b.iter(|| Executor::new(g).with_threads(k).run(&algo, budget).unwrap())
                }),
            );
        }

        // Per-port message executor.
        let prog = MsgFlood { t: *t };
        push(
            "message",
            "legacy",
            measure(test_mode, samples, |b| {
                b.iter(|| legacy_msg_run(g, &prog, budget).unwrap())
            }),
        );
        push(
            "message",
            "seq",
            measure(test_mode, samples, |b| {
                b.iter(|| MessageExecutor::new(g).run(&prog, budget).unwrap())
            }),
        );
        for (variant, k) in [("par2", 2usize), ("par4", 4)] {
            push(
                "message",
                variant,
                measure(test_mode, samples, |b| {
                    b.iter(|| {
                        MessageExecutor::new(g)
                            .with_threads(k)
                            .run(&prog, budget)
                            .unwrap()
                    })
                }),
            );
        }

        // CONGEST metering on top of the message executor.
        push(
            "congest",
            "legacy",
            measure(test_mode, samples, |b| {
                b.iter(|| {
                    let metered = LegacyMetered {
                        inner: &prog,
                        size_of: msg_width,
                        stats: std::cell::RefCell::new((0, 0)),
                    };
                    let run = legacy_msg_run(g, &metered, budget).unwrap();
                    black_box(metered.stats.into_inner());
                    run
                })
            }),
        );
        push(
            "congest",
            "seq",
            measure(test_mode, samples, |b| {
                b.iter(|| {
                    CongestExecutor::new(g, 64, msg_width)
                        .run(&prog, budget)
                        .unwrap()
                })
            }),
        );
        for (variant, k) in [("par2", 2usize), ("par4", 4)] {
            push(
                "congest",
                variant,
                measure(test_mode, samples, |b| {
                    b.iter(|| {
                        CongestExecutor::new(g, 64, msg_width)
                            .with_threads(k)
                            .run(&prog, budget)
                            .unwrap()
                    })
                }),
            );
        }
    }

    // Per-(topology, executor) speedup of the new sequential loop over the
    // pre-PR loop — the acceptance metric for this bench.
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    for (topology, g, _) in &topologies {
        for executor in ["state", "message", "congest"] {
            let mean_of = |variant: &str| {
                cases
                    .iter()
                    .find(|c| {
                        c.topology == *topology && c.executor == executor && c.variant == variant
                    })
                    .map(|c| c.m.mean_ns)
            };
            if let (Some(legacy), Some(seq)) = (mean_of("legacy"), mean_of("seq")) {
                let s = legacy / seq;
                println!("executors/{topology}/{executor}: legacy/seq speedup {s:.2}x");
                speedups.push((format!("{topology}/{executor}"), g.n(), s));
            }
        }
    }

    if let Some(path) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            (
                "mode".to_string(),
                Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
            ),
            ("samples".to_string(), Value::U64(samples as u64)),
            (
                "cases".to_string(),
                Value::Seq(
                    cases
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("topology".to_string(), Value::Str(c.topology.to_string())),
                                ("n".to_string(), Value::U64(c.n as u64)),
                                ("executor".to_string(), Value::Str(c.executor.to_string())),
                                ("variant".to_string(), Value::Str(c.variant.to_string())),
                                ("mean_ns".to_string(), Value::F64(c.m.mean_ns)),
                                ("min_ns".to_string(), Value::F64(c.m.min_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "legacy_over_seq_speedups".to_string(),
                Value::Seq(
                    speedups
                        .iter()
                        .map(|(key, n, s)| {
                            Value::Map(vec![
                                ("case".to_string(), Value::Str(key.clone())),
                                ("n".to_string(), Value::U64(*n as u64)),
                                ("speedup".to_string(), Value::F64(*s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        use std::io::Write as _;
        let mut file = std::fs::File::create(&path).expect("create bench json");
        file.write_all(json::to_string(&report).as_bytes())
            .expect("write bench json");
        file.write_all(b"\n").expect("write bench json");
        println!("wrote {}", path.display());
    }
}
