//! Experiment harness regenerating the paper's claims (DESIGN.md's E1–E10).
//!
//! Each experiment is a function returning a Markdown section (a table in
//! the shape of the claim it reproduces plus a short interpretation). The
//! `experiments` binary runs any subset and can assemble EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p delta-bench --bin experiments -- all --out EXPERIMENTS.md
//! cargo run --release -p delta-bench --bin experiments -- e1 e4
//! ```

pub mod experiments;
pub mod util;

/// Schema version stamped into every JSON report this crate writes (the
/// `BENCH_*.json` bench reports and the experiments `--json` output).
/// `benchdiff` refuses to compare files whose versions differ; bump it
/// whenever a report's shape changes incompatibly.
pub const BENCH_SCHEMA_VERSION: u64 = 1;
