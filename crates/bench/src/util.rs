//! Table building and curve fitting for the experiment harness.

use std::fmt::Write as _;

use serde::Value;

/// A Markdown table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Renders as a JSON value: `{"columns": [...], "rows": [[...]]}`.
    /// Cells stay strings — the table is the already-formatted view; the
    /// raw numbers an analysis needs live in the experiment's own fields.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "columns".to_string(),
                Value::Seq(self.header.iter().map(|h| Value::Str(h.clone())).collect()),
            ),
            (
                "rows".to_string(),
                Value::Seq(
                    self.rows
                        .iter()
                        .map(|r| Value::Seq(r.iter().map(|c| Value::Str(c.clone())).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Least-squares fit `y ≈ a·x + b`; returns `(a, b, r²)`.
///
/// Degenerate inputs never produce NaN: an empty series fits to
/// `(0, 0, 0)`, zero-variance `x` to a flat line through the mean with
/// `r² = 0`, and zero-variance `y` (perfectly explained by any flat line)
/// to `r² = 1`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n, 0.0);
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (a * x + b)).powi(2))
        .sum();
    let r2 = if ss_tot.abs() < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, if r2.is_finite() { r2 } else { 0.0 })
}

/// `log2` as f64, for fitting rounds against `log n`.
pub fn log2(x: usize) -> f64 {
    (x as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["n", "rounds"]);
        t.row(&["10".into(), "42".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| n | rounds |"));
        assert!(md.contains("| 10 | 42 |"));
    }

    #[test]
    fn table_to_value_round_trips_through_json() {
        let mut t = Table::new(&["n", "rounds"]);
        t.row(&["10".into(), "42".into()]);
        let json = serde::json::to_string(&t.to_value());
        let back = serde::json::parse(&json).unwrap();
        assert_eq!(back.field("columns").unwrap().as_seq(2).unwrap().len(), 2);
        assert_eq!(back.field("rows").unwrap().as_seq(1).unwrap().len(), 1);
    }

    #[test]
    fn fit_recovers_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
        assert!(r2 > 0.999);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(&["1".into()]);
    }

    #[test]
    fn fit_degenerate_inputs_never_nan() {
        let (a, b, r2) = linear_fit(&[], &[]);
        assert_eq!((a, b, r2), (0.0, 0.0, 0.0));
        // Zero-variance x: flat line through the mean, nothing explained.
        let (a, b, r2) = linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(a == 0.0 && (b - 2.0).abs() < 1e-9 && r2 == 0.0);
        // Zero-variance y: perfectly explained by the flat fit.
        let (_, b, r2) = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert!((b - 5.0).abs() < 1e-9);
        assert_eq!(r2, 1.0);
        // A single point is fit exactly by the flat line through it.
        let (a, b, r2) = linear_fit(&[7.0], &[3.0]);
        assert!(a.is_finite() && b.is_finite() && r2.is_finite());
    }
}
