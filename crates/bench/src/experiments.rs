//! The experiments E1–E10 (see DESIGN.md §5 for the claim ↔ experiment map).

use baselines::{delta_plus_one, global_stalling, random_trial_stuck};
use delta_core::{color_deterministic, color_randomized, Config, RandConfig};
use graphgen::generators::{self, BlueprintKind, EasyCliqueParams, HardCliqueParams, LoopholeKind};
use hypergraph::generators::random_hypergraph;
use hypergraph::{heg_augmenting, heg_blocking, heg_token_walk, verify_heg};
use primitives::{matching, mis, ruling, split};
use serde::Value;

use crate::util::{linear_fit, log2, Table};

/// One experiment's output: a Markdown section for EXPERIMENTS.md plus
/// the machine-readable record behind it.
pub struct ExperimentOutput {
    /// Markdown section (header, tables, interpretation).
    pub markdown: String,
    /// JSON record `{name, params, series, fit, per_phase_rounds}`; the
    /// `experiments` binary appends the measured `wall_clock_ms`.
    pub data: Value,
}

fn u(x: usize) -> Value {
    Value::U64(x as u64)
}

fn useq(xs: &[usize]) -> Value {
    Value::Seq(xs.iter().map(|&x| u(x)).collect())
}

fn fit_value(fit: Option<(f64, f64, f64)>) -> Value {
    match fit {
        Some((a, b, r2)) => Value::Map(vec![
            ("slope".to_string(), Value::F64(a)),
            ("intercept".to_string(), Value::F64(b)),
            ("r2".to_string(), Value::F64(r2)),
        ]),
        None => Value::Null,
    }
}

/// Assembles an [`ExperimentOutput`]. `per_phase` is the grouped round
/// ledger of a representative run (empty for subroutine experiments).
fn record(
    name: &str,
    params: Vec<(&str, Value)>,
    series: Vec<(&str, &Table)>,
    fit: Option<(f64, f64, f64)>,
    per_phase: &[(String, u64)],
    markdown: String,
) -> ExperimentOutput {
    let data = Value::Map(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        (
            "params".to_string(),
            Value::Map(
                params
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        (
            "series".to_string(),
            Value::Map(
                series
                    .into_iter()
                    .map(|(k, t)| (k.to_string(), t.to_value()))
                    .collect(),
            ),
        ),
        ("fit".to_string(), fit_value(fit)),
        (
            "per_phase_rounds".to_string(),
            Value::Map(
                per_phase
                    .iter()
                    .map(|(p, r)| (p.clone(), Value::U64(*r)))
                    .collect(),
            ),
        ),
    ]);
    ExperimentOutput { markdown, data }
}

fn hard(cliques: usize, delta: usize, ext: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques(&HardCliqueParams {
        cliques,
        delta,
        external_per_vertex: ext,
        seed,
    })
    .expect("experiment instance generation")
}

fn hard_circulant(cliques: usize, delta: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques,
            delta,
            external_per_vertex: 1,
            seed,
        },
        BlueprintKind::Circulant,
    )
    .expect("circulant instance generation")
}

/// E1 — Theorem 1: deterministic rounds vs `n` at constant Δ.
pub fn e1_det_rounds(quick: bool) -> ExperimentOutput {
    let delta = 64;
    let sizes: &[usize] = if quick {
        &[128, 192, 256]
    } else {
        &[128, 192, 256, 384, 512, 768, 1024]
    };
    let mut table = Table::new(&[
        "cliques",
        "n",
        "log2 n",
        "total rounds",
        "HEG rounds",
        "matching",
        "split",
        "deg+1",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut heg_ys = Vec::new();
    let mut per_phase = Vec::new();
    for &m in sizes {
        let inst = hard(m, delta, 1, 1000 + m as u64);
        let report = color_deterministic(&inst.graph, &Config::paper())
            .expect("deterministic pipeline on hard instance");
        graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)
            .expect("valid Δ-coloring");
        per_phase = report.ledger.grouped();
        let l = &report.ledger;
        let (total, hegr) = (l.total(), l.total_for("hyperedge grabbing"));
        table.row(&[
            m.to_string(),
            inst.graph.n().to_string(),
            format!("{:.1}", log2(inst.graph.n())),
            total.to_string(),
            hegr.to_string(),
            l.total_for("maximal matching").to_string(),
            l.total_for("degree splitting").to_string(),
            (l.total_for("instance") + l.total_for("pair coloring")).to_string(),
        ]);
        xs.push(log2(inst.graph.n()));
        ys.push(total as f64);
        heg_ys.push(hegr as f64);
    }
    let (a, b, r2) = linear_fit(&xs, &ys);
    let (ah, bh, r2h) = linear_fit(&xs, &heg_ys);
    let markdown = format!(
        "## E1 — Theorem 1: deterministic Δ-coloring of dense constant-Δ graphs\n\n\
         Hard instances (Δ = {delta}, one external edge per vertex, paper parameters \
         ε = 1/63, K = 28 sub-cliques). The theorem predicts `O(Δ + log n)` rounds; at \
         fixed Δ the n-dependence should be (at most) logarithmic.\n\n{}\n\
         Fit of total rounds against log₂ n: rounds ≈ {a:.1}·log₂ n + {b:.1} (r² = {r2:.3}); \
         HEG-phase rounds ≈ {ah:.1}·log₂ n + {bh:.1} (r² = {r2h:.3}). The Δ-dependent terms \
         (matching, list-coloring schedules) are flat in n, as the theorem demands.\n",
        table.to_markdown()
    );
    record(
        "e1",
        vec![
            ("delta", u(delta)),
            ("cliques", useq(sizes)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("rounds_vs_n", &table)],
        Some((a, b, r2)),
        &per_phase,
        markdown,
    )
}

/// E2 — Theorem 1: Δ-dependence of the `O(Δ + log n)` branch.
pub fn e2_delta_scaling(quick: bool) -> ExperimentOutput {
    let deltas: &[usize] = if quick {
        &[16, 32]
    } else {
        &[16, 32, 48, 64, 96]
    };
    let mut table = Table::new(&["Δ", "n", "total rounds", "rounds / (Δ·log₂Δ)"]);
    let mut per_phase = Vec::new();
    for &delta in deltas {
        let m = (2 * delta + 8).div_ceil(2) * 2;
        let inst = hard(m, delta, 1, 2000 + delta as u64);
        let report = color_deterministic(&inst.graph, &Config::for_delta(delta))
            .expect("deterministic pipeline");
        per_phase = report.ledger.grouped();
        let total = report.ledger.total();
        let norm = total as f64 / (delta as f64 * (delta as f64).log2());
        table.row(&[
            delta.to_string(),
            inst.graph.n().to_string(),
            total.to_string(),
            format!("{norm:.2}"),
        ]);
    }
    let markdown = format!(
        "## E2 — Theorem 1: Δ-dependence\n\n\
         The paper's branch is `O(Δ + log n)`; our substituted subroutines (Kuhn–Wattenhofer \
         reductions) bound it by `O(Δ log Δ + log n)`. The normalized column decreasing \
         confirms growth is *sub*-`Δ log Δ` — close to linear in Δ plus a large additive \
         constant — comfortably inside the substituted bound (see DESIGN.md).\n\n{}\n",
        table.to_markdown()
    );
    record(
        "e2",
        vec![("deltas", useq(deltas)), ("quick", Value::Bool(quick))],
        vec![("rounds_vs_delta", &table)],
        None,
        &per_phase,
        markdown,
    )
}

/// E3 — Theorem 2: randomized rounds and shattering vs `n`.
pub fn e3_rand_rounds(quick: bool) -> ExperimentOutput {
    let delta = 16;
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let mut per_phase = Vec::new();
    let mut table = Table::new(&[
        "cliques",
        "n",
        "log2 n",
        "mean rounds",
        "mean T-nodes",
        "mean components",
        "max component (over seeds)",
    ]);
    let mut xs = Vec::new();
    let mut comp_ys = Vec::new();
    let seeds: u64 = if quick { 2 } else { 5 };
    for &m in sizes {
        let inst = hard_circulant(m, delta, 3000 + m as u64);
        let (mut rounds, mut tn, mut comps, mut maxc) = (0u64, 0usize, 0usize, 0usize);
        for seed in 0..seeds {
            let mut config = RandConfig::for_delta(delta, 9 + seed);
            config.placement_prob = 0.12; // sparse placement: exercises components
            let report = color_randomized(&inst.graph, &config).expect("randomized pipeline");
            graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)
                .expect("valid Δ-coloring");
            per_phase = report.ledger.grouped();
            rounds += report.ledger.total();
            tn += report.shatter.t_nodes;
            comps += report.shatter.components;
            maxc = maxc.max(report.shatter.max_component);
        }
        let s = seeds as usize;
        table.row(&[
            m.to_string(),
            inst.graph.n().to_string(),
            format!("{:.1}", log2(inst.graph.n())),
            (rounds / seeds).to_string(),
            (tn / s).to_string(),
            (comps / s).to_string(),
            maxc.to_string(),
        ]);
        xs.push(log2(inst.graph.n()));
        // Fit the series the theorem actually bounds: component size
        // divided by the poly(Δ) factor (Δ³ here), against log₂ n. A raw
        // max-component fit conflates the Δ-dependence into the slope and
        // intercept and produces nonsense (previously a −1004.8 intercept).
        comp_ys.push(maxc as f64 / (delta * delta * delta) as f64);
    }
    let (a, b, r2) = linear_fit(&xs, &comp_ys);
    let markdown = format!(
        "## E3 — Theorem 2: randomized Δ-coloring and shattering\n\n\
         Circulant hard instances (Δ = {delta}; linear clique-graph diameter so the \
         shattering structure is visible) with sparse T-node placement. Theorem 2 builds \
         on leftover components of size `poly Δ · log n`: component sizes should grow (at \
         most) logarithmically in n while the total rounds stay dominated by flat Δ \
         terms.\n\n{}\n\
         Fit of max component size / Δ³ against log₂ n: \
         {a:.3}·log₂ n + {b:.3} (r² = {r2:.3}).\n",
        table.to_markdown()
    );
    record(
        "e3",
        vec![
            ("delta", u(delta)),
            ("cliques", useq(sizes)),
            ("placement_prob", Value::F64(0.12)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("shattering_vs_n", &table)],
        Some((a, b, r2)),
        &per_phase,
        markdown,
    )
}

/// E4 — Lemma 5: HEG rounds vs `n` and vs the expansion margin `δ/r`.
pub fn e4_heg_scaling(quick: bool) -> ExperimentOutput {
    let margins: &[(usize, usize)] = &[(5, 4), (6, 4), (8, 4), (16, 4)];
    let sizes: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 4096, 16384, 65536]
    };
    let mut table = Table::new(&[
        "δ",
        "r",
        "δ/r",
        "n",
        "augmenting rounds",
        "blocking rounds",
        "token-walk rounds",
    ]);
    for &(d, r) in margins {
        for &n in sizes {
            let h = random_hypergraph(n, d, r, (n + d) as u64).expect("hypergraph generation");
            let aug = heg_augmenting(&h).expect("augmenting HEG");
            assert!(verify_heg(&h, &aug.value));
            let blk = heg_blocking(&h).expect("blocking HEG");
            assert!(verify_heg(&h, &blk.value));
            let tok = heg_token_walk(&h, 7).expect("token-walk HEG");
            assert!(verify_heg(&h, &tok.value));
            table.row(&[
                d.to_string(),
                r.to_string(),
                format!("{:.2}", d as f64 / r as f64),
                n.to_string(),
                aug.rounds.to_string(),
                blk.rounds.to_string(),
                tok.rounds.to_string(),
            ]);
        }
    }
    let markdown = format!(
        "## E4 — Lemma 5: hyperedge grabbing in `O(log_(δ/r) n)` rounds\n\n\
         Random multihypergraphs with exact vertex degree δ and rank ≤ r. Lemma 5 predicts \
         fewer rounds for larger expansion margins δ/r and logarithmic growth in n at a \
         fixed margin; both solvers (DESIGN.md substitution D1) should show that shape.\n\n{}\n",
        table.to_markdown()
    );
    record(
        "e4",
        vec![("sizes", useq(sizes)), ("quick", Value::Bool(quick))],
        vec![("heg_rounds", &table)],
        None,
        &[],
        markdown,
    )
}

/// E5 — Lemmas 10–16: structural invariants, measured against their bounds.
pub fn e5_invariants(quick: bool) -> ExperimentOutput {
    let delta = 64;
    let m = if quick { 128 } else { 256 };
    let inst = hard(m, delta, 1, 5000);
    let report =
        color_deterministic(&inst.graph, &Config::paper()).expect("deterministic pipeline");
    let per_phase = report.ledger.grouped();
    let s = &report.stats;
    let mut table = Table::new(&["quantity (lemma)", "measured", "bound", "holds"]);
    let eps = 1.0 / 63.0;
    let rows: Vec<(String, f64, f64, bool)> = vec![
        (
            "r_H (Lemma 11 rank bound: ≤ 2εΔ)".into(),
            s.phase1.r_h as f64,
            2.0 * eps * delta as f64,
            s.phase1.r_h as f64 <= (2.0 * eps * delta as f64).ceil(),
        ),
        (
            "δ_H (Lemma 11 proposals: ≥ ⌊(1−ε)Δ/28⌋)".into(),
            s.phase1.delta_h as f64,
            ((1.0 - eps) * delta as f64 / 28.0).floor(),
            s.phase1.delta_h as f64 >= ((1.0 - eps) * delta as f64 / 28.0).floor(),
        ),
        (
            "min outgoing F2 (Lemma 12: ≥ 28)".into(),
            s.phase1.min_outgoing as f64,
            28.0,
            s.phase1.min_outgoing >= 28,
        ),
        (
            "max incoming F3 (Lemma 13: < ½(Δ−2εΔ−1))".into(),
            s.max_incoming as f64,
            s.incoming_bound,
            (s.max_incoming as f64) < s.incoming_bound,
        ),
        (
            "max degree of G_V (Lemma 16: ≤ Δ−2)".into(),
            s.phase4.gv_max_degree as f64,
            (delta - 2) as f64,
            s.phase4.gv_max_degree <= delta - 2,
        ),
    ];
    for (q, v, b, ok) in rows {
        table.row(&[q, format!("{v:.2}"), format!("{b:.2}"), ok.to_string()]);
    }
    // D2 ablation: sub-clique count vs the Lemma 11 margin.
    let mut ab = Table::new(&["sub-cliques K", "δ_H", "r_H", "δ_H/r_H", "pipeline ok"]);
    for k in [7, 14, 28, 56] {
        let config = Config {
            subcliques: k,
            enforce_paper_bounds: false,
            ..Config::paper()
        };
        match color_deterministic(&inst.graph, &config) {
            Ok(rep) => {
                let p = &rep.stats.phase1;
                ab.row(&[
                    k.to_string(),
                    p.delta_h.to_string(),
                    p.r_h.to_string(),
                    format!("{:.2}", p.delta_h as f64 / p.r_h as f64),
                    "yes".to_string(),
                ]);
            }
            Err(e) => {
                ab.row(&[
                    k.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("no: {e}"),
                ]);
            }
        }
    }
    let markdown = format!(
        "## E5 — structural invariants of the balanced-matching pipeline\n\n\
         Hard instance with Δ = {delta}, {m} cliques, paper parameters. Every quantity the \
         proofs bound, measured (Figures 2–4 are the structural illustrations of these \
         objects; the `holds` column is the mechanized check). Note Lemma 11's headline \
         margin δ_H > 1.1·r_H needs Δ in the thousands before the brief announcement's \
         constants close; what the pipeline relies on — instance feasibility — is checked \
         by the HEG solver succeeding on every run.\n\n{}\n\
         ### Ablation D2: sub-clique count K (paper: 28, the maximum ε = 1/63 admits)\n\n\
         The HEG margin δ_H/r_H shrinks as K grows; K = 28 is calibrated so that the \
         margin stays above 1.1.\n\n{}\n",
        table.to_markdown(),
        ab.to_markdown()
    );
    record(
        "e5",
        vec![
            ("delta", u(delta)),
            ("cliques", u(m)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("invariants", &table), ("ablation_subcliques", &ab)],
        None,
        &per_phase,
        markdown,
    )
}

/// E6 — §1 motivation: baselines vs the pipeline.
pub fn e6_baselines(quick: bool) -> ExperimentOutput {
    let delta = 16;
    let sizes: &[usize] = if quick {
        &[34, 68]
    } else {
        &[34, 68, 136, 272, 544]
    };
    let mut per_phase = Vec::new();
    let mut table = Table::new(&[
        "cliques",
        "n",
        "Δ+1 coloring (greedy regime)",
        "ours (Δ, Thm 1)",
        "global stalling (Δ, naive)",
        "sequential Brooks",
        "greedy stuck vertices",
    ]);
    for &m in sizes {
        let inst = hard(m, delta, 1, 6000 + m as u64);
        let dp1 = delta_plus_one(&inst.graph).expect("Δ+1 coloring");
        let ours = color_deterministic(&inst.graph, &Config::for_delta(delta))
            .expect("deterministic pipeline");
        per_phase = ours.ledger.grouped();
        let (stall, _) = global_stalling(&inst.graph).expect("global stalling");
        let stuck = random_trial_stuck(&inst.graph, 1, u64::MAX);
        table.row(&[
            m.to_string(),
            inst.graph.n().to_string(),
            dp1.rounds.to_string(),
            ours.ledger.total().to_string(),
            stall.rounds.to_string(),
            inst.graph.n().to_string(),
            stuck.stuck.to_string(),
        ]);
    }
    // High-diameter dense family: single-slack-source algorithms pay the
    // full Θ(diameter); the pipeline's loophole machinery stays flat.
    let ring_sizes: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let mut ring = Table::new(&[
        "ring cliques",
        "n",
        "diameter≈",
        "ours (rounds)",
        "stalling (rounds)",
    ]);
    for &m in ring_sizes {
        let g = generators::clique_ring(m, delta);
        let ours = color_deterministic(&g, &Config::for_delta(delta))
            .expect("deterministic pipeline on clique ring");
        graphgen::coloring::verify_delta_coloring(&g, &ours.coloring).expect("valid");
        let (stall, _) = global_stalling(&g).expect("global stalling");
        ring.row(&[
            m.to_string(),
            g.n().to_string(),
            (m / 2).to_string(),
            ours.ledger.total().to_string(),
            stall.rounds.to_string(),
        ]);
    }
    let markdown = format!(
        "## E6 — why Δ-coloring needs machinery (baseline comparison)\n\n\
         Δ = {delta} hard instances. The greedy-regime (Δ+1)-coloring is cheap and flat; \
         the naive Δ-coloring stalls the whole graph around one slack source and grows \
         with the diameter; the paper's pipeline stays between them with at most \
         logarithmic growth. Greedy with Δ colors jams (last column: vertices reached \
         with an empty palette).\n\n{}\n\
         ### High-diameter dense family (ring of cliques, diameter Θ(n/Δ))\n\n\
         Here the crossover is decisive: global stalling pays the full diameter while \
         the pipeline's per-clique loopholes keep it flat.\n\n{}\n",
        table.to_markdown(),
        ring.to_markdown()
    );
    record(
        "e6",
        vec![
            ("delta", u(delta)),
            ("cliques", useq(sizes)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("baselines", &table), ("clique_ring", &ring)],
        None,
        &per_phase,
        markdown,
    )
}

/// E7 — Lemma 20: easy cliques and loopholes.
pub fn e7_easy_rounds(quick: bool) -> ExperimentOutput {
    let delta = 16;
    let sizes: &[usize] = if quick {
        &[34, 68]
    } else {
        &[34, 68, 136, 272]
    };
    let mut per_phase = Vec::new();
    let mut table = Table::new(&[
        "cliques",
        "planted loopholes",
        "kind",
        "easy-sweep rounds",
        "layers",
        "total rounds",
    ]);
    for &m in sizes {
        for kind in [LoopholeKind::LowDegree, LoopholeKind::FourCycle] {
            let inst = generators::easy_cliques(&EasyCliqueParams {
                base: HardCliqueParams {
                    cliques: m,
                    delta,
                    external_per_vertex: 1,
                    seed: 7000 + m as u64,
                },
                easy: m / 8,
                kind,
            })
            .expect("easy instance");
            let report = color_deterministic(&inst.graph, &Config::for_delta(delta))
                .expect("deterministic pipeline");
            graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)
                .expect("valid Δ-coloring");
            per_phase = report.ledger.grouped();
            table.row(&[
                m.to_string(),
                (m / 8).to_string(),
                format!("{kind:?}"),
                report.ledger.total_for("easy").to_string(),
                report.stats.easy.layers.to_string(),
                report.ledger.total().to_string(),
            ]);
        }
    }
    // Ablation D4: the ruling radius r of Lemma 19 (1 = plain MIS).
    let mut ab = Table::new(&["ruling radius r", "easy-sweep rounds", "selected loopholes"]);
    let inst = generators::easy_cliques(&EasyCliqueParams {
        base: HardCliqueParams {
            cliques: 136,
            delta: 16,
            external_per_vertex: 1,
            seed: 7777,
        },
        easy: 17,
        kind: LoopholeKind::LowDegree,
    })
    .expect("easy instance");
    for r in [1usize, 2, 3] {
        let config = Config {
            ruling_r: r,
            ..Config::for_delta(16)
        };
        let report = color_deterministic(&inst.graph, &config).expect("deterministic pipeline");
        ab.row(&[
            r.to_string(),
            report.ledger.total_for("easy").to_string(),
            report.stats.easy.selected.to_string(),
        ]);
    }
    let markdown = format!(
        "## E7 — Lemma 20: coloring easy cliques and loopholes\n\n\
         Instances with planted loopholes (deleted intra-clique edges → degree-deficient \
         vertices; rewired external edges → non-clique 4-cycles). Lemma 20 predicts a \
         constant number of layers (≤ 25 at the paper's ε) and `T_rs + O(T_deg+1)` \
         rounds, flat in n.\n\n{}\n\
         ### Ablation D4: ruling-set radius (Lemma 19's r; our power-graph MIS)\n\n\
         Larger radii select fewer loopholes but pay the dilation of the power graph — \
         the trade Lemma 19 optimizes.\n\n{}\n",
        table.to_markdown(),
        ab.to_markdown()
    );
    record(
        "e7",
        vec![
            ("delta", u(delta)),
            ("cliques", useq(sizes)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("easy_sweep", &table), ("ablation_ruling_radius", &ab)],
        None,
        &per_phase,
        markdown,
    )
}

/// E8 — shattering ablation (D5): placement probability and spacing.
pub fn e8_shattering(quick: bool) -> ExperimentOutput {
    let delta = 16;
    let m = if quick { 160 } else { 320 };
    let mut per_phase = Vec::new();
    let inst = hard_circulant(m, delta, 8000);
    let mut table = Table::new(&[
        "p",
        "spacing b",
        "proposed",
        "placed",
        "deferred",
        "components",
        "max component",
    ]);
    let probs: &[f64] = if quick {
        &[0.2, 0.8]
    } else {
        &[0.1, 0.3, 0.5, 0.7, 0.9]
    };
    for &p in probs {
        for b in [2usize, 4, 6] {
            let mut config = RandConfig::for_delta(delta, 11);
            config.placement_prob = p;
            config.spacing = b;
            let report = color_randomized(&inst.graph, &config).expect("randomized pipeline");
            graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)
                .expect("valid Δ-coloring");
            per_phase = report.ledger.grouped();
            let s = &report.shatter;
            table.row(&[
                format!("{p:.1}"),
                b.to_string(),
                s.proposed.to_string(),
                s.t_nodes.to_string(),
                s.deferred.to_string(),
                s.components.to_string(),
                s.max_component.to_string(),
            ]);
        }
    }
    let markdown = format!(
        "## E8 — ablation D5: T-node placement probability and spacing\n\n\
         Δ = {delta}, {m} cliques. Higher placement probability and smaller spacing plant \
         more T-nodes, defer more vertices, and shrink the leftover components; larger \
         spacing trades that against fewer \"useless\" boundary vertices. Every run still \
         produces a valid Δ-coloring.\n\n{}\n",
        table.to_markdown()
    );
    record(
        "e8",
        vec![
            ("delta", u(delta)),
            ("cliques", u(m)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("placement_ablation", &table)],
        None,
        &per_phase,
        markdown,
    )
}

/// E9 — Lemma 21 / Corollary 22: degree splitting quality and rounds.
pub fn e9_split(quick: bool) -> ExperimentOutput {
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 16384]
    };
    let mut table = Table::new(&[
        "n",
        "degree",
        "max |disc| (1 split)",
        "rounds",
        "4-way max deviation",
    ]);
    for &n in sizes {
        let d = 16;
        let g = generators::random_regular(n, d, 42);
        let one = split::degree_split(&g, 8).expect("degree split");
        let disc = one.value.discrepancies(&g);
        let max_disc = disc.iter().copied().max().unwrap_or(0);
        let four = split::split_into_parts(&g, 2, 8).expect("4-way split");
        let edges: Vec<_> = g.edges().collect();
        let mut max_dev = 0i64;
        for v in g.vertices() {
            let mut counts = [0i64; 4];
            for (i, &(a, b)) in edges.iter().enumerate() {
                if a == v || b == v {
                    counts[four.value[i] as usize] += 1;
                }
            }
            for c in counts {
                max_dev = max_dev.max((c - (d as i64) / 4).abs());
            }
        }
        table.row(&[
            n.to_string(),
            d.to_string(),
            max_disc.to_string(),
            one.rounds.to_string(),
            max_dev.to_string(),
        ]);
    }
    // Ablation D3: recursion depth of the 2^i-way split (Corollary 22;
    // the pipeline uses i = 2).
    let mut ab = Table::new(&[
        "levels i",
        "parts 2^i",
        "max deviation from deg/2^i",
        "rounds",
    ]);
    let g = generators::random_regular(2048, 16, 42);
    let edges: Vec<_> = g.edges().collect();
    for i in [1u32, 2, 3] {
        let out = split::split_into_parts(&g, i, 8).expect("split");
        let parts = 1usize << i;
        let mut max_dev = 0i64;
        for v in g.vertices() {
            let mut counts = vec![0i64; parts];
            for (e, &(a, b)) in edges.iter().enumerate() {
                if a == v || b == v {
                    counts[out.value[e] as usize] += 1;
                }
            }
            for c in counts {
                max_dev = max_dev.max((c - 16 / parts as i64).abs());
            }
        }
        ab.row(&[
            i.to_string(),
            parts.to_string(),
            max_dev.to_string(),
            out.rounds.to_string(),
        ]);
    }
    let markdown = format!(
        "## E9 — Lemma 21 / Corollary 22: degree splitting\n\n\
         Euler-walk splitting with even segments. Lemma 21 allows discrepancy ε·d(v)+4; \
         our even-segment variant gives `1 + 2·(odd-cycle defects)` independent of ε \
         (stronger; see DESIGN.md). Rounds are dominated by the walk-power MIS, flat-ish \
         in n (log* growth).\n\n{}\n\
         ### Ablation D3: recursion depth (Corollary 22's 2^i parts; pipeline uses i = 2)\n\n\
         Deviations compound geometrically with the levels, exactly as Corollary 22's \
         `a = 2·Σ(1/2+ε/4)^j` predicts.\n\n{}\n",
        table.to_markdown(),
        ab.to_markdown()
    );
    record(
        "e9",
        vec![("sizes", useq(sizes)), ("quick", Value::Bool(quick))],
        vec![("split_quality", &table), ("ablation_levels", &ab)],
        None,
        &[],
        markdown,
    )
}

/// E10 — §3.8 subroutine round complexities.
pub fn e10_subroutines(quick: bool) -> ExperimentOutput {
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 16384]
    };
    let d = 8;
    let mut table = Table::new(&[
        "n",
        "MM det",
        "MM rand",
        "MIS det",
        "MIS Luby",
        "(deg+1)-list",
        "(2,2)-ruling",
    ]);
    for &n in sizes {
        let g = generators::random_regular(n, d, 77);
        let mm_det = matching::maximal_matching_det_direct(&g)
            .expect("det matching")
            .rounds;
        let mm_rand = matching::maximal_matching_rand(&g, 5)
            .expect("rand matching")
            .rounds;
        let mis_det = mis::mis_deterministic(&g, None).expect("det MIS").rounds;
        let mis_rand = mis::mis_luby(&g, 5).expect("Luby MIS").rounds;
        let palettes: Vec<Vec<graphgen::Color>> = (0..g.n())
            .map(|_| (0..=d as u32).map(graphgen::Color).collect())
            .collect();
        let lc = primitives::list_coloring::deg_plus_one_list_color(&g, &palettes, None)
            .expect("list coloring")
            .rounds;
        let rs = ruling::ruling_set(&g, 2, ruling::RulingStyle::Deterministic)
            .expect("ruling set")
            .rounds;
        table.row(&[
            n.to_string(),
            mm_det.to_string(),
            mm_rand.to_string(),
            mis_det.to_string(),
            mis_rand.to_string(),
            lc.to_string(),
            rs.to_string(),
        ]);
    }
    let markdown = format!(
        "## E10 — subroutine round complexities (§3.8's T_MM, T_deg+1, T_MIS, T_rs)\n\n\
         Random {d}-regular graphs. Deterministic subroutines are `O(Δ log Δ + log* n)` \
         (flat in n up to log*); randomized ones grow logarithmically.\n\n{}\n",
        table.to_markdown()
    );
    record(
        "e10",
        vec![
            ("degree", u(d)),
            ("sizes", useq(sizes)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("subroutine_rounds", &table)],
        None,
        &[],
        markdown,
    )
}

/// E11 — the extension beyond the paper: sparse + dense mixtures (§1.1's
/// future-work direction).
pub fn e11_sparse_dense(quick: bool) -> ExperimentOutput {
    let delta = 32;
    let mut per_phase = Vec::new();
    let sizes: &[(usize, usize)] = if quick {
        &[(68, 200)]
    } else {
        &[(68, 200), (68, 600), (136, 1200)]
    };
    let mut table = Table::new(&[
        "cliques",
        "sparse n",
        "total n",
        "trial rounds",
        "trial colored",
        "assists",
        "total rounds",
    ]);
    for &(m, sp) in sizes {
        let inst = generators::sparse_dense_mix(&generators::SparseDenseParams {
            cliques: m,
            delta,
            sparse: sp,
            cross: sp / 12,
            seed: 11_000 + sp as u64,
        })
        .expect("mixture generation");
        let report = delta_core::color_sparse_dense(&inst.graph, &RandConfig::for_delta(delta, 4))
            .expect("sparse+dense pipeline");
        graphgen::coloring::verify_delta_coloring(&inst.graph, &report.coloring)
            .expect("valid Δ-coloring");
        per_phase = report.ledger.grouped();
        table.row(&[
            m.to_string(),
            sp.to_string(),
            inst.graph.n().to_string(),
            report.stats.trial_rounds.to_string(),
            report.stats.trial_colored.to_string(),
            report.stats.assists.to_string(),
            report.ledger.total().to_string(),
        ]);
    }
    let markdown = format!(
        "## E11 — extension: sparse + dense mixtures (the paper's §1.1 outlook)\n\n\
         Δ = {delta}, Δ-regular mixtures of hard cliques and a random sparse region. One-\
         round color trials give sparse vertices permanent slack (two same-colored \
         neighbors), the dense machinery runs unchanged (stalling on uncolored sparse \
         neighbors where needed), and the sparse region is colored last in a single \
         (deg+1) instance — the composition the paper sketches as the route to general \
         graphs.\n\n{}\n",
        table.to_markdown()
    );
    record(
        "e11",
        vec![("delta", u(delta)), ("quick", Value::Bool(quick))],
        vec![("sparse_dense", &table)],
        None,
        &per_phase,
        markdown,
    )
}

/// E12 — CONGEST compatibility: the symmetry-breaking toolbox with
/// metered, `O(log n)`-bit messages.
pub fn e12_congest(quick: bool) -> ExperimentOutput {
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 16384]
    };
    let d = 8;
    let mut table = Table::new(&[
        "n",
        "Δ+1 trials rounds",
        "Δ+1 max bits",
        "MIS rounds",
        "MIS max bits",
        "matching rounds",
        "matching max bits",
    ]);
    for &n in sizes {
        let g = generators::random_regular(n, d, 123);
        let col =
            primitives::congest_coloring::congest_delta_plus_one(&g, 1).expect("congest coloring");
        col.coloring
            .check_complete(&g, d as u32 + 1)
            .expect("proper");
        let mis = primitives::congest_mis::congest_mis(&g, 2).expect("congest MIS");
        assert!(primitives::mis::is_mis(&g, &mis.value));
        let mat = primitives::congest_mis::congest_matching(&g, 3).expect("congest matching");
        table.row(&[
            n.to_string(),
            col.rounds.to_string(),
            col.max_message_bits.to_string(),
            mis.rounds.to_string(),
            mis.max_message_bits.to_string(),
            mat.rounds.to_string(),
            mat.max_message_bits.to_string(),
        ]);
    }
    let markdown = format!(
        "## E12 — CONGEST compatibility of the symmetry-breaking toolbox\n\n\
         Random {d}-regular graphs; the per-port implementations run through the metering \
         executor. Message widths stay `O(log Δ)` / `O(log n)` / constant respectively \
         (the models of the related-work results [MU21, HM24]), while rounds grow \
         logarithmically as the randomized analyses predict.\n\n{}\n",
        table.to_markdown()
    );
    record(
        "e12",
        vec![
            ("degree", u(d)),
            ("sizes", useq(sizes)),
            ("quick", Value::Bool(quick)),
        ],
        vec![("congest_toolbox", &table)],
        None,
        &[],
        markdown,
    )
}

/// E13 — fault injection: recovery cost of the randomized pipeline under
/// seed-deterministic message-drop plans.
pub fn e13_faults(quick: bool) -> ExperimentOutput {
    use delta_core::{color_randomized_with_faults, validate_coloring};
    use localsim::{FaultPlan, Probe};

    let delta = 16;
    let sizes: &[usize] = if quick { &[128] } else { &[128, 256, 512] };
    let drops: &[f64] = &[0.0, 0.005, 0.01, 0.02];
    let seeds: u64 = if quick { 2 } else { 4 };
    let mut per_phase = Vec::new();
    let mut table = Table::new(&[
        "cliques",
        "n",
        "drop p",
        "mean retries",
        "components hit / total",
        "struck vertices",
        "recovery rounds",
        "mean total rounds",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &m in sizes {
        let inst = hard_circulant(m, delta, 3000 + m as u64);
        for &drop in drops {
            let (mut retries, mut hit, mut comps, mut struck, mut recovery, mut rounds) =
                (0usize, 0usize, 0usize, 0usize, 0u64, 0u64);
            for seed in 0..seeds {
                // defer_radius 5 leaves leftover components on circulant
                // instances (the default 7 swallows them whole).
                let mut config = RandConfig::for_delta(delta, 9 + seed);
                config.defer_radius = 5;
                let plan = FaultPlan {
                    seed: 0xFA17 + seed,
                    message_drop_p: drop,
                    ..FaultPlan::default()
                };
                let report =
                    color_randomized_with_faults(&inst.graph, &config, &plan, &Probe::disabled())
                        .expect("faulted randomized pipeline");
                assert!(
                    validate_coloring(&inst.graph, &report.coloring, delta as u32).is_ok(),
                    "every faulted run must terminate with a validated coloring"
                );
                per_phase = report.ledger.grouped();
                retries += report.recovery.retries;
                hit += report.recovery.components_hit;
                comps += report.shatter.components;
                struck += report.recovery.struck_vertices;
                recovery += report.recovery.recovery_rounds;
                rounds += report.ledger.total();
            }
            let s = seeds as usize;
            table.row(&[
                m.to_string(),
                inst.graph.n().to_string(),
                format!("{drop}"),
                format!("{:.1}", retries as f64 / s as f64),
                format!("{} / {}", hit / s, comps / s),
                (struck / s).to_string(),
                (recovery / seeds).to_string(),
                (rounds / seeds).to_string(),
            ]);
            xs.push(drop);
            ys.push(recovery as f64 / seeds as f64);
        }
    }
    let (a, b, r2) = linear_fit(&xs, &ys);
    let markdown = format!(
        "## E13 — fault injection: recovery cost under message drops\n\n\
         Circulant hard instances (Δ = {delta}, `defer_radius = 5` so post-shattering \
         leaves real leftover components) colored by the randomized pipeline under \
         seed-deterministic fault plans (`localsim::FaultPlan`). Per-vertex strike \
         probability scales with `drop p · deg`; every struck component is detected by \
         the `core::validate` sweep, rolled back wholesale, and re-solved with a salted \
         seed — the discarded attempts are the *recovery rounds* column, charged to the \
         ledger under `faults/`. Every run, at every drop rate, terminates with a \
         coloring that passes validation; `drop p = 0` matches the fault-free pipeline \
         exactly.\n\n{}\n\
         Fit of mean recovery rounds against drop p: {a:.1}·p + {b:.1} (r² = {r2:.3}).\n",
        table.to_markdown()
    );
    record(
        "e13",
        vec![
            ("delta", u(delta)),
            ("cliques", useq(sizes)),
            (
                "drops",
                Value::Seq(drops.iter().map(|&d| Value::F64(d)).collect()),
            ),
            ("quick", Value::Bool(quick)),
        ],
        vec![("recovery_vs_drop", &table)],
        Some((a, b, r2)),
        &per_phase,
        markdown,
    )
}

/// An experiment id and its runner (`quick` flag in, Markdown + JSON out).
pub type Experiment = (&'static str, fn(bool) -> ExperimentOutput);

/// All experiments in order, as `(id, runner)` pairs.
pub fn all() -> Vec<Experiment> {
    vec![
        ("e1", e1_det_rounds),
        ("e2", e2_delta_scaling),
        ("e3", e3_rand_rounds),
        ("e4", e4_heg_scaling),
        ("e5", e5_invariants),
        ("e6", e6_baselines),
        ("e7", e7_easy_rounds),
        ("e8", e8_shattering),
        ("e9", e9_split),
        ("e10", e10_subroutines),
        ("e11", e11_sparse_dense),
        ("e12", e12_congest),
        ("e13", e13_faults),
    ]
}
