//! benchdiff — compare two JSON reports case-by-case and gate on
//! regressions.
//!
//! ```text
//! benchdiff BENCH_pipeline.json new_pipeline.json
//! benchdiff --threshold 25 --metric min_ns base.json cand.json
//! benchdiff baseline-metrics.json candidate-metrics.json
//! benchdiff --filter topo=clique,exec=state base.json cand.json
//! benchdiff --summary base.json cand.json
//! benchdiff --ratio par4:seq BENCH_executors.json
//! ```
//!
//! Understands both report families this workspace writes:
//!
//! - **Bench reports** (`BENCH_*.json`, written by the `--json` flag of
//!   the executors/pipeline/supervisor benches): every object inside a
//!   sequence that carries a `mean_ns` field is a case; its key is the
//!   containing field plus the identifying scalar fields
//!   (`cases/topology=clique,n=2000,executor=msg,variant=seq`). The
//!   compared value is `--metric` (`mean_ns` by default, or `min_ns`,
//!   which is less noisy on shared machines).
//! - **Metrics snapshots** (written by `delta-color --metrics-out`):
//!   counters, watermarks, and `worker_units_total` are compared by
//!   name. Timing metrics (names ending `_ns`) and the per-worker lane
//!   table are skipped — they are not deterministic, so a diff would be
//!   pure noise; what remains must match exactly across runs of the
//!   same seed at any thread count.
//!
//! A case **regresses** when `candidate / baseline > 1 + threshold/100`
//! (default threshold 10%). Exit codes: `0` no regressions, `1` at
//! least one regression, `2` usage error or refused input (unreadable
//! file, or the two reports carry different `schema_version`s). Cases
//! present in only one file are listed but never gate — bench sizes
//! differ between smoke and full mode, and new cases must not fail the
//! gate that introduces them.
//!
//! Selection and presentation:
//!
//! - `--filter K=V[,K=V...]` keeps only cases whose identity carries
//!   every `K=V` component. `topo` aliases `topology` and `exec`
//!   aliases `executor`, matching the bench CLI's own flag names.
//! - `--summary` collapses the per-case table to one line (count,
//!   regressions, worst ratio) — for CI logs and commit messages.
//! - `--ratio A:B <report.json>` is a **single-file** mode: each case
//!   with `variant=A` is divided by its `variant=B` twin (identical
//!   identity otherwise), answering "what is par4 / seq right now?"
//!   per case plus as a geometric mean. Informational: always exits
//!   `0` when at least one pair exists (`2` when none does), so CI can
//!   print the parallel speedup without gating on machine core count.
//!   Pairs where either side measured `0` (smoke mode can round a
//!   sub-resolution case down to `min_ns == 0`) are listed as
//!   "incomparable" and excluded from the geometric mean instead of
//!   poisoning it with `inf`/NaN.

use std::collections::BTreeMap;

use serde::{json, Value};

const USAGE: &str = "usage: benchdiff [--threshold PCT] [--metric mean_ns|min_ns] \
                     [--filter K=V[,K=V...]] [--summary] \
                     <baseline.json> <candidate.json>\n\
                     \x20      benchdiff --ratio VARIANT_A:VARIANT_B [--filter ...] [--summary] \
                     <report.json>";

/// Fields that hold measurements rather than case identity.
const MEASUREMENT_FIELDS: [&str; 9] = [
    "mean_ns",
    "min_ns",
    "init_bytes",
    "round_bytes",
    "total_sent_bytes",
    "total_recv_bytes",
    "ghost_updates",
    "ghost_suppressed",
    "rounds",
];

/// What `--metric bytes` expands to: every deterministic wire-traffic
/// field the shard bench records, plus the round count (byte figures
/// are only comparable at equal rounds). Each expands to its own case
/// key (`...#field`), so one invocation gates the whole series — at
/// `--threshold 0` any byte-level protocol drift fails the gate.
const BYTES_FIELDS: [&str; 7] = [
    "init_bytes",
    "round_bytes",
    "total_sent_bytes",
    "total_recv_bytes",
    "ghost_updates",
    "ghost_suppressed",
    "rounds",
];

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(args: &[String]) -> i32 {
    let mut threshold = 10.0f64;
    let mut metric = "mean_ns".to_string();
    let mut filter: Vec<String> = Vec::new();
    let mut summary = false;
    let mut ratio: Option<(String, String)> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => threshold = t,
                _ => {
                    eprintln!("invalid --threshold value\n{USAGE}");
                    return 2;
                }
            },
            "--metric" => {
                match it.next() {
                    Some(m) if m == "bytes" || MEASUREMENT_FIELDS.contains(&m.as_str()) => {
                        metric = m.clone();
                    }
                    _ => {
                        eprintln!("invalid --metric value (mean_ns, min_ns, a byte field, or bytes)\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--filter" => match it.next().map(|v| parse_filter(v)) {
                Some(Ok(terms)) => filter.extend(terms),
                _ => {
                    eprintln!("invalid --filter value (comma-separated K=V terms)\n{USAGE}");
                    return 2;
                }
            },
            "--summary" => summary = true,
            "--ratio" => match it.next().and_then(|v| v.split_once(':')) {
                Some((a, b)) if !a.is_empty() && !b.is_empty() => {
                    ratio = Some((a.to_string(), b.to_string()));
                }
                _ => {
                    eprintln!("invalid --ratio value (expected VARIANT_A:VARIANT_B)\n{USAGE}");
                    return 2;
                }
            },
            _ => files.push(a.clone()),
        }
    }

    if let Some((num, den)) = ratio {
        let [path] = files.as_slice() else {
            eprintln!("--ratio compares variants inside one report\n{USAGE}");
            return 2;
        };
        let report = match load(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let mut cases = extract(&report, &metric);
        cases.retain(|k, _| matches_filter(k, &filter));
        return run_ratio(&cases, &num, &den, summary);
    }

    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let baseline = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let candidate = match load(candidate_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if let Err(e) = check_schema(&baseline, &candidate) {
        eprintln!("error: {e}");
        return 2;
    }

    let mut base_cases = extract(&baseline, &metric);
    let mut cand_cases = extract(&candidate, &metric);
    // Distinguish "the series is absent from the report" (pre-filter)
    // from "the filter matched nothing" (post-filter): the fixes differ.
    if metric == "bytes" {
        let mut absent = false;
        for (role, path, report, cases) in [
            ("baseline", baseline_path, &baseline, &base_cases),
            ("candidate", candidate_path, &candidate, &cand_cases),
        ] {
            if cases.is_empty() {
                eprintln!("error: {}", missing_bytes_series(role, path, report));
                absent = true;
            }
        }
        if absent {
            return 2;
        }
    }
    base_cases.retain(|k, _| matches_filter(k, &filter));
    cand_cases.retain(|k, _| matches_filter(k, &filter));
    if base_cases.is_empty() || cand_cases.is_empty() {
        eprintln!(
            "error: no comparable cases found ({} in baseline, {} in candidate)",
            base_cases.len(),
            cand_cases.len()
        );
        return 2;
    }
    let diff = compare(&base_cases, &cand_cases, threshold);
    let regressions = diff.rows.iter().filter(|r| r.regressed).count();

    if summary {
        // One line for CI logs: count, regressions, and the worst ratio
        // with its case so a red gate is diagnosable without re-running.
        let worst = diff.rows.iter().max_by(|a, b| a.ratio.total_cmp(&b.ratio));
        match worst {
            Some(w) => println!(
                "{} case(s), {regressions} regression(s) past +{threshold}%, \
                 worst {:.2}x ({})",
                diff.rows.len(),
                w.ratio,
                w.key
            ),
            None => println!("0 case(s) matched in both reports"),
        }
        return i32::from(regressions > 0);
    }

    let width = diff
        .rows
        .iter()
        .map(|r| r.key.len())
        .max()
        .unwrap_or(4)
        .max(4);
    println!(
        "{:width$}  {:>14}  {:>14}  {:>7}",
        "case", "baseline", "candidate", "ratio"
    );
    for row in &diff.rows {
        let flag = if row.regressed { "  REGRESSED" } else { "" };
        println!(
            "{:width$}  {:>14.0}  {:>14.0}  {:>6.2}x{flag}",
            row.key, row.baseline, row.candidate, row.ratio
        );
    }
    for key in &diff.only_baseline {
        println!("{key}: only in baseline (skipped)");
    }
    for key in &diff.only_candidate {
        println!("{key}: only in candidate (skipped)");
    }
    println!(
        "{} case(s) compared, {} regression(s) past +{threshold}%",
        diff.rows.len(),
        regressions
    );
    i32::from(regressions > 0)
}

/// Parses a `--filter` argument: comma-separated `K=V` terms, with the
/// bench CLI's short key names (`topo`, `exec`) normalized to the field
/// names reports actually carry.
fn parse_filter(raw: &str) -> Result<Vec<String>, ()> {
    raw.split(',')
        .map(|term| {
            let (k, v) = term.split_once('=').ok_or(())?;
            if k.is_empty() || v.is_empty() {
                return Err(());
            }
            let k = match k {
                "topo" => "topology",
                "exec" => "executor",
                other => other,
            };
            Ok(format!("{k}={v}"))
        })
        .collect()
}

/// A case key (`cases/topology=clique,n=2000,executor=state,variant=seq`)
/// matches when every filter term appears among its `K=V` components.
/// A `#field` suffix (from `--metric bytes` expansion) is not part of
/// the identity. Metrics-snapshot keys have no components, so any
/// filter excludes them.
fn matches_filter(key: &str, terms: &[String]) -> bool {
    if terms.is_empty() {
        return true;
    }
    let tail = key.rsplit('/').next().unwrap_or(key);
    let tail = tail.split_once('#').map_or(tail, |(t, _)| t);
    let components: Vec<&str> = tail.split(',').collect();
    terms.iter().all(|t| components.contains(&t.as_str()))
}

/// Case pairs split by whether a ratio is meaningful. Smoke-mode runs of
/// very fast cases can record `min_ns == 0`; a zero on either side would
/// print `inf` or push `ln(0) = -inf` into the geometric mean, so those
/// pairs land in `incomparable` — listed, never averaged.
struct VariantRatios {
    /// `(shared identity, num value, den value, num/den)`, in key order.
    comparable: Vec<(String, f64, f64, f64)>,
    /// `(shared identity, num value, den value)` where either side is
    /// zero (or negative, which no well-formed report produces).
    incomparable: Vec<(String, f64, f64)>,
}

/// The `variant=num / variant=den` ratio per case pair, in key order.
fn variant_ratios(cases: &BTreeMap<String, f64>, num: &str, den: &str) -> VariantRatios {
    let num_term = format!("variant={num}");
    let den_term = format!("variant={den}");
    let mut out = VariantRatios {
        comparable: Vec::new(),
        incomparable: Vec::new(),
    };
    for (key, &a) in cases {
        if !matches_filter(key, std::slice::from_ref(&num_term)) {
            continue;
        }
        let twin = key.replace(&num_term, &den_term);
        let Some(&b) = cases.get(&twin) else { continue };
        let label = strip_variant(key, &num_term);
        if a <= 0.0 || b <= 0.0 {
            out.incomparable.push((label, a, b));
        } else {
            out.comparable.push((label, a, b, a / b));
        }
    }
    out
}

/// Drops the `variant=...` component from a case key, leaving the pair's
/// shared identity.
fn strip_variant(key: &str, term: &str) -> String {
    key.split(',')
        .filter(|c| *c != term)
        .collect::<Vec<_>>()
        .join(",")
}

fn run_ratio(cases: &BTreeMap<String, f64>, num: &str, den: &str, summary: bool) -> i32 {
    let ratios = variant_ratios(cases, num, den);
    let pairs = &ratios.comparable;
    if pairs.is_empty() && ratios.incomparable.is_empty() {
        eprintln!("error: no case pairs with variant={num} and variant={den}");
        return 2;
    }
    let geomean = if pairs.is_empty() {
        None
    } else {
        Some((pairs.iter().map(|(_, _, _, r)| r.ln()).sum::<f64>() / pairs.len() as f64).exp())
    };
    let summary_line = || {
        let excluded = match ratios.incomparable.len() {
            0 => String::new(),
            k => format!(", {k} incomparable pair(s) excluded"),
        };
        match geomean {
            Some(g) => format!(
                "{num}/{den} geomean {g:.2}x over {} case pair(s){excluded}",
                pairs.len()
            ),
            None => format!("{num}/{den} geomean undefined: 0 comparable case pair(s){excluded}"),
        }
    };
    if summary {
        println!("{}", summary_line());
        return 0;
    }
    let width = pairs
        .iter()
        .map(|(k, ..)| k.len())
        .chain(ratios.incomparable.iter().map(|(k, ..)| k.len()))
        .max()
        .unwrap_or(4)
        .max(4);
    println!(
        "{:width$}  {:>14}  {:>14}  {:>7}",
        "case", num, den, "ratio"
    );
    for (key, a, b, r) in pairs {
        println!("{key:width$}  {a:>14.0}  {b:>14.0}  {r:>6.2}x");
    }
    for (key, a, b) in &ratios.incomparable {
        println!("{key:width$}  {a:>14.0}  {b:>14.0}  incomparable (zero measurement)");
    }
    println!("{}", summary_line());
    0
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    json::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

/// Reports carrying different schema versions cannot be compared; a
/// report written before versioning counts as version 1.
fn check_schema(baseline: &Value, candidate: &Value) -> Result<(), String> {
    let version = |v: &Value| match v.field("schema_version") {
        Ok(Value::U64(n)) => Ok(*n),
        Ok(other) => Err(format!("schema_version is {other:?}, expected an integer")),
        Err(_) => Ok(1),
    };
    let b = version(baseline)?;
    let c = version(candidate)?;
    if b != c {
        return Err(format!(
            "schema mismatch: baseline is version {b}, candidate is version {c}; \
             regenerate the baseline with this build before comparing"
        ));
    }
    Ok(())
}

fn scalar(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

/// Flattens a report into `case key -> value`. Metrics snapshots (maps
/// with `counters` and `histograms`) use the deterministic metric names;
/// anything else is scanned for bench cases carrying `metric` — or, for
/// `--metric bytes`, any of [`BYTES_FIELDS`], each under its own
/// `#field`-suffixed key.
fn extract(report: &Value, metric: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if report.field("counters").is_ok() && report.field("histograms").is_ok() {
        collect_metrics(report, &mut out);
    } else {
        let fields: &[&str] = if metric == "bytes" {
            &BYTES_FIELDS
        } else {
            std::slice::from_ref(
                MEASUREMENT_FIELDS
                    .iter()
                    .find(|f| **f == metric)
                    .expect("metric validated at parse time"),
            )
        };
        collect_cases("", report, fields, &mut out);
    }
    out
}

/// Diagnostic for `--metric bytes` when a report extracts to zero
/// cases: says *which* file lacks the wire byte series and why —
/// typically a baseline written before the shard bench recorded
/// `wire_cases`, or a report from a different bench entirely — and how
/// to regenerate it, instead of the generic comparable-case count.
fn missing_bytes_series(role: &str, path: &str, report: &Value) -> String {
    let why = match report.field("wire_cases") {
        Ok(_) => "its `wire_cases` entries carry no byte fields",
        Err(_) => "it has no `wire_cases` series at all",
    };
    format!(
        "{role} report `{path}` lacks the wire byte series — {why}; regenerate it with \
         `cargo bench -p delta-bench --bench shard -- --json <out>` before diffing with \
         --metric bytes"
    )
}

/// Deterministic slice of a `--metrics-out` snapshot: counters and
/// watermarks not ending in `_ns`, plus `worker_units_total`.
fn collect_metrics(report: &Value, out: &mut BTreeMap<String, f64>) {
    for section in ["counters", "watermarks"] {
        if let Ok(Value::Map(entries)) = report.field(section) {
            for (name, v) in entries {
                if name.ends_with("_ns") {
                    continue;
                }
                if let Some(x) = scalar(v) {
                    out.insert(format!("{section}.{name}"), x);
                }
            }
        }
    }
    if let Ok(v) = report.field("worker_units_total") {
        if let Some(x) = scalar(v) {
            out.insert("worker_units_total".to_string(), x);
        }
    }
}

/// Walks a bench report: a map object inside any sequence that carries
/// at least one of the measurement fields is a case, keyed by its path
/// and identifying scalar fields in report order. With a single field
/// the key is the bare identity; with several (`--metric bytes`) each
/// present field gets its own `#field`-suffixed key.
fn collect_cases(prefix: &str, v: &Value, metrics: &[&str], out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Map(entries) => {
            for (k, child) in entries {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                collect_cases(&path, child, metrics, out);
            }
        }
        Value::Seq(items) => {
            for item in items {
                let Value::Map(fields) = item else { continue };
                let present: Vec<(&str, f64)> = metrics
                    .iter()
                    .filter_map(|m| {
                        fields
                            .iter()
                            .find(|(k, _)| k == m)
                            .and_then(|(_, v)| scalar(v))
                            .map(|x| (*m, x))
                    })
                    .collect();
                if present.is_empty() {
                    continue;
                }
                let identity: Vec<String> = fields
                    .iter()
                    .filter(|(k, _)| !MEASUREMENT_FIELDS.contains(&k.as_str()))
                    .filter_map(|(k, v)| match v {
                        Value::Str(s) => Some(format!("{k}={s}")),
                        Value::Bool(b) => Some(format!("{k}={b}")),
                        other => scalar(other).map(|x| format!("{k}={x}")),
                    })
                    .collect();
                let key = format!("{prefix}/{}", identity.join(","));
                if let [(_, value)] = present.as_slice() {
                    out.insert(key, *value);
                } else {
                    for (m, value) in present {
                        out.insert(format!("{key}#{m}"), value);
                    }
                }
            }
        }
        _ => {}
    }
}

struct DiffRow {
    key: String,
    baseline: f64,
    candidate: f64,
    ratio: f64,
    regressed: bool,
}

struct Diff {
    rows: Vec<DiffRow>,
    only_baseline: Vec<String>,
    only_candidate: Vec<String>,
}

fn compare(base: &BTreeMap<String, f64>, cand: &BTreeMap<String, f64>, threshold: f64) -> Diff {
    let limit = 1.0 + threshold / 100.0;
    let mut rows = Vec::new();
    let mut only_baseline = Vec::new();
    for (key, &b) in base {
        match cand.get(key) {
            None => only_baseline.push(key.clone()),
            Some(&c) => {
                // 0 -> 0 is unchanged; 0 -> anything positive always
                // regresses (no finite threshold can cover it).
                let ratio = if b == 0.0 {
                    if c == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    c / b
                };
                rows.push(DiffRow {
                    key: key.clone(),
                    baseline: b,
                    candidate: c,
                    ratio,
                    regressed: ratio > limit,
                });
            }
        }
    }
    let only_candidate = cand
        .keys()
        .filter(|k| !base.contains_key(*k))
        .cloned()
        .collect();
    Diff {
        rows,
        only_baseline,
        only_candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_report(cases: &[(&str, u64, u64)]) -> Value {
        Value::Map(vec![
            ("schema_version".to_string(), Value::U64(1)),
            ("mode".to_string(), Value::Str("smoke".to_string())),
            (
                "cases".to_string(),
                Value::Seq(
                    cases
                        .iter()
                        .map(|(name, mean, min)| {
                            Value::Map(vec![
                                ("topology".to_string(), Value::Str((*name).to_string())),
                                ("n".to_string(), Value::U64(100)),
                                ("mean_ns".to_string(), Value::U64(*mean)),
                                ("min_ns".to_string(), Value::U64(*min)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn cases_key_on_identity_fields() {
        let cases = extract(&bench_report(&[("clique", 1000, 900)]), "mean_ns");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases["cases/topology=clique,n=100"], 1000.0);
        let mins = extract(&bench_report(&[("clique", 1000, 900)]), "min_ns");
        assert_eq!(mins["cases/topology=clique,n=100"], 900.0);
    }

    #[test]
    fn injected_regression_is_flagged_and_noise_is_not() {
        let base = extract(
            &bench_report(&[("clique", 1000, 900), ("sparse", 2000, 1800)]),
            "mean_ns",
        );
        // clique +50% (regression past 10%), sparse +5% (within noise).
        let cand = extract(
            &bench_report(&[("clique", 1500, 1300), ("sparse", 2100, 1900)]),
            "mean_ns",
        );
        let diff = compare(&base, &cand, 10.0);
        assert_eq!(diff.rows.len(), 2);
        let flagged: Vec<_> = diff
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.key.as_str())
            .collect();
        assert_eq!(flagged, ["cases/topology=clique,n=100"]);
    }

    #[test]
    fn unmatched_cases_never_gate() {
        let base = extract(&bench_report(&[("clique", 1000, 900)]), "mean_ns");
        let cand = extract(&bench_report(&[("sparse", 9000, 8000)]), "mean_ns");
        let diff = compare(&base, &cand, 10.0);
        assert!(diff.rows.is_empty());
        assert_eq!(diff.only_baseline.len(), 1);
        assert_eq!(diff.only_candidate.len(), 1);
    }

    #[test]
    fn schema_mismatch_is_refused_and_missing_version_is_v1() {
        let v1 = bench_report(&[]);
        let mut v2 = bench_report(&[]);
        if let Value::Map(entries) = &mut v2 {
            entries[0].1 = Value::U64(2);
        }
        assert!(check_schema(&v1, &v2).is_err());
        let unversioned = Value::Map(vec![("cases".to_string(), Value::Seq(vec![]))]);
        assert!(check_schema(&v1, &unversioned).is_ok());
        assert!(check_schema(&v2, &unversioned).is_err());
    }

    #[test]
    fn metrics_snapshots_compare_deterministic_names_only() {
        let snap = |rounds: u64| {
            Value::Map(vec![
                ("schema_version".to_string(), Value::U64(1)),
                (
                    "counters".to_string(),
                    Value::Map(vec![
                        ("exec.rounds".to_string(), Value::U64(rounds)),
                        ("pool.spawn_ns".to_string(), Value::U64(123456)),
                    ]),
                ),
                (
                    "watermarks".to_string(),
                    Value::Map(vec![("exec.live_peak".to_string(), Value::U64(2000))]),
                ),
                ("histograms".to_string(), Value::Map(vec![])),
                ("worker_units_total".to_string(), Value::U64(64)),
            ])
        };
        let cases = extract(&snap(813), "mean_ns");
        assert_eq!(cases.len(), 3, "timing counter excluded: {cases:?}");
        assert_eq!(cases["counters.exec.rounds"], 813.0);
        assert_eq!(cases["watermarks.exec.live_peak"], 2000.0);
        assert_eq!(cases["worker_units_total"], 64.0);
        // Identical deterministic snapshots diff clean at threshold 0.
        let diff = compare(&cases, &extract(&snap(813), "mean_ns"), 0.0);
        assert!(diff.rows.iter().all(|r| !r.regressed));
        // A behavior change is caught even at a generous threshold.
        let diff = compare(&cases, &extract(&snap(2000), "mean_ns"), 100.0);
        assert!(diff.rows.iter().any(|r| r.regressed));
    }

    fn wire_report(init: u64, round: u64, rounds: u64) -> Value {
        Value::Map(vec![
            ("schema_version".to_string(), Value::U64(1)),
            (
                "wire_cases".to_string(),
                Value::Seq(vec![Value::Map(vec![
                    ("topology".to_string(), Value::Str("clique".to_string())),
                    ("n".to_string(), Value::U64(2000)),
                    ("algo".to_string(), Value::Str("rand:7".to_string())),
                    ("shards".to_string(), Value::U64(4)),
                    ("rounds".to_string(), Value::U64(rounds)),
                    ("init_bytes".to_string(), Value::U64(init)),
                    ("round_bytes".to_string(), Value::U64(round)),
                    (
                        "total_sent_bytes".to_string(),
                        Value::U64(init + round * rounds),
                    ),
                    ("total_recv_bytes".to_string(), Value::U64(round * rounds)),
                    ("ghost_updates".to_string(), Value::U64(64)),
                    ("ghost_suppressed".to_string(), Value::U64(32)),
                ])]),
            ),
        ])
    }

    #[test]
    fn bytes_metric_expands_every_wire_field_and_gates_exactly() {
        let cases = extract(&wire_report(900, 70, 2873), "bytes");
        assert_eq!(cases.len(), BYTES_FIELDS.len(), "{cases:?}");
        let key = "wire_cases/topology=clique,n=2000,algo=rand:7,shards=4";
        assert_eq!(cases[&format!("{key}#init_bytes")], 900.0);
        assert_eq!(cases[&format!("{key}#round_bytes")], 70.0);
        assert_eq!(cases[&format!("{key}#rounds")], 2873.0);
        // Identical reports diff clean at threshold 0...
        let diff = compare(&cases, &extract(&wire_report(900, 70, 2873), "bytes"), 0.0);
        assert!(diff.rows.iter().all(|r| !r.regressed));
        // ...and a single extra byte per round fails the exact gate.
        let diff = compare(&cases, &extract(&wire_report(900, 71, 2873), "bytes"), 0.0);
        assert!(diff.rows.iter().any(|r| r.regressed));
        // Timing cases don't leak into bytes mode and vice versa.
        assert!(extract(&bench_report(&[("clique", 1000, 900)]), "bytes").is_empty());
        assert!(extract(&wire_report(900, 70, 2873), "mean_ns").is_empty());
        // Filters see the identity through the #field suffix.
        let terms = parse_filter("shards=4").unwrap();
        assert!(matches_filter(&format!("{key}#init_bytes"), &terms));
        assert!(!matches_filter(
            &format!("{key}#init_bytes"),
            &parse_filter("shards=2").unwrap()
        ));
    }

    #[test]
    fn absent_wire_series_is_named_not_counted() {
        // A pre-wire-series baseline (bench cases only): the diagnostic
        // names the file, the missing series, and the regeneration step.
        let msg = missing_bytes_series(
            "baseline",
            "old.json",
            &bench_report(&[("clique", 1000, 900)]),
        );
        assert!(msg.contains("baseline report `old.json`"), "{msg}");
        assert!(msg.contains("no `wire_cases` series at all"), "{msg}");
        assert!(msg.contains("bench shard"), "{msg}");
        // A present-but-empty series gets the other explanation.
        let hollow = Value::Map(vec![("wire_cases".to_string(), Value::Seq(vec![]))]);
        let msg = missing_bytes_series("candidate", "new.json", &hollow);
        assert!(msg.contains("candidate report `new.json`"), "{msg}");
        assert!(msg.contains("carry no byte fields"), "{msg}");
    }

    #[test]
    fn bytes_diff_against_a_baseline_without_the_series_exits_2() {
        let dir = std::env::temp_dir().join(format!("benchdiff-absent-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(
            &base,
            r#"{"schema_version":1,"cases":[{"topology":"clique","n":64,"mean_ns":100}]}"#,
        )
        .unwrap();
        std::fs::write(
            &cand,
            r#"{"schema_version":1,"wire_cases":[{"topology":"clique","n":64,"shards":4,
                "rounds":3,"init_bytes":900,"round_bytes":70,"total_sent_bytes":1110,
                "total_recv_bytes":210,"ghost_updates":4,"ghost_suppressed":2}]}"#,
        )
        .unwrap();
        let args: Vec<String> = [
            "--metric",
            "bytes",
            base.to_str().unwrap(),
            cand.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run(&args), 2, "series-absent diff must refuse, not pass");
        // The same pair under the default timing metric still takes the
        // generic no-comparable-cases exit (candidate has no mean_ns).
        let args: Vec<String> = [base.to_str().unwrap(), cand.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filter_terms_select_by_identity_component() {
        let terms = parse_filter("topo=clique,exec=state,variant=par4").unwrap();
        assert_eq!(terms, ["topology=clique", "executor=state", "variant=par4"]);
        let key = "cases/topology=clique,n=2000,executor=state,variant=par4";
        assert!(matches_filter(key, &terms));
        // Component match, not substring match: `n=200` must not match
        // `n=2000`, and `variant=seq` must not match `variant=par4`.
        assert!(!matches_filter(key, &parse_filter("n=200").unwrap()));
        assert!(!matches_filter(key, &parse_filter("variant=seq").unwrap()));
        assert!(matches_filter(key, &[]));
        // Metrics keys carry no identity components.
        assert!(!matches_filter("counters.exec.rounds", &terms));
        assert!(parse_filter("oops").is_err());
        assert!(parse_filter("k=").is_err());
    }

    fn variant_report(cases: &[(&str, &str, u64)]) -> BTreeMap<String, f64> {
        let report = Value::Map(vec![(
            "cases".to_string(),
            Value::Seq(
                cases
                    .iter()
                    .map(|(topo, variant, mean)| {
                        Value::Map(vec![
                            ("topology".to_string(), Value::Str((*topo).to_string())),
                            ("variant".to_string(), Value::Str((*variant).to_string())),
                            ("mean_ns".to_string(), Value::U64(*mean)),
                        ])
                    })
                    .collect(),
            ),
        )]);
        extract(&report, "mean_ns")
    }

    #[test]
    fn ratio_pairs_variants_and_skips_singletons() {
        let cases = variant_report(&[
            ("clique", "seq", 1000),
            ("clique", "par4", 500),
            ("path", "seq", 2000),
            ("path", "par4", 4000),
            ("cycle", "par4", 700), // no seq twin: skipped
        ]);
        let ratios = variant_ratios(&cases, "par4", "seq");
        let pairs = &ratios.comparable;
        assert_eq!(pairs.len(), 2);
        assert!(ratios.incomparable.is_empty());
        // Keys are the shared identity with the variant stripped.
        assert_eq!(pairs[0].0, "cases/topology=clique");
        assert!((pairs[0].3 - 0.5).abs() < 1e-9);
        assert_eq!(pairs[1].0, "cases/topology=path");
        assert!((pairs[1].3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_measurements_are_incomparable_not_inf() {
        // Smoke-mode reports can legitimately carry min_ns == 0 for
        // sub-nanosecond-resolution cases; the pair must be bucketed,
        // not divided.
        let cases = variant_report(&[
            ("clique", "seq", 1000),
            ("clique", "par4", 500),
            ("path", "seq", 0), // zero denominator
            ("path", "par4", 4000),
            ("cycle", "seq", 800),
            ("cycle", "par4", 0), // zero numerator
        ]);
        let ratios = variant_ratios(&cases, "par4", "seq");
        assert_eq!(ratios.comparable.len(), 1);
        assert_eq!(ratios.comparable[0].0, "cases/topology=clique");
        let incomparable: Vec<&str> = ratios
            .incomparable
            .iter()
            .map(|(k, ..)| k.as_str())
            .collect();
        assert_eq!(
            incomparable,
            ["cases/topology=cycle", "cases/topology=path"]
        );
        // The surviving geomean is finite and the run stays exit 0.
        assert!(ratios
            .comparable
            .iter()
            .all(|(_, _, _, r)| r.is_finite() && *r > 0.0));
        assert_eq!(run_ratio(&cases, "par4", "seq", true), 0);
        assert_eq!(run_ratio(&cases, "par4", "seq", false), 0);
    }

    #[test]
    fn all_pairs_incomparable_still_reports_instead_of_nan() {
        let cases = variant_report(&[("clique", "seq", 0), ("clique", "par4", 0)]);
        let ratios = variant_ratios(&cases, "par4", "seq");
        assert!(ratios.comparable.is_empty());
        assert_eq!(ratios.incomparable.len(), 1);
        // Pairs exist (just not comparable ones): informational exit 0,
        // not the "no pairs at all" usage error.
        assert_eq!(run_ratio(&cases, "par4", "seq", true), 0);
        assert_eq!(run_ratio(&cases, "par4", "seq", false), 0);
    }

    #[test]
    fn ratio_run_is_informational() {
        let cases = variant_report(&[("clique", "seq", 1000), ("clique", "par4", 3000)]);
        // A 3x slowdown still exits 0 — core-count dependent, not a gate.
        assert_eq!(run_ratio(&cases, "par4", "seq", true), 0);
        assert_eq!(run_ratio(&cases, "par4", "seq", false), 0);
        // No pairs at all is a usage error.
        assert_eq!(run_ratio(&cases, "par8", "seq", false), 2);
    }

    #[test]
    fn zero_baseline_handling() {
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), 0.0);
        base.insert("b".to_string(), 0.0);
        let mut cand = BTreeMap::new();
        cand.insert("a".to_string(), 0.0);
        cand.insert("b".to_string(), 5.0);
        let diff = compare(&base, &cand, 50.0);
        assert!(!diff.rows[0].regressed, "0 -> 0 is unchanged");
        assert!(diff.rows[1].regressed, "0 -> 5 always regresses");
    }
}
