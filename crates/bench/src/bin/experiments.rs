//! Runs the experiment harness and (optionally) writes EXPERIMENTS.md
//! and/or a machine-readable JSON report.
//!
//! ```text
//! experiments all --out EXPERIMENTS.md     # full run
//! experiments e1 e4 --quick               # subset, reduced sizes
//! experiments all --quick --json out.json # structured per-experiment report
//! ```
//!
//! Experiments are isolated from each other: a panicking experiment is
//! contained with `catch_unwind`, recorded as a failure in both the
//! markdown and the JSON report, and the remaining experiments still
//! run. The process exits nonzero if any experiment failed.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::Value;

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out");
    let json_path = flag_value("--json");
    let flag_values: Vec<&String> = [out_path.as_ref(), json_path.as_ref()]
        .into_iter()
        .flatten()
        .collect();
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.contains(a))
        .cloned()
        .collect();
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");

    let mut sections = vec![header(quick)];
    let mut records: Vec<Value> = Vec::new();
    let mut failed: Vec<String> = Vec::new();
    for (id, f) in delta_bench::experiments::all() {
        if run_all || wanted.iter().any(|w| w == id) {
            eprintln!("running {id} ...");
            let started = std::time::Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| f(quick)));
            let elapsed = started.elapsed();
            let wall_ms = elapsed.as_secs_f64() * 1e3;
            match outcome {
                Ok(output) => {
                    eprintln!("  {id} done in {elapsed:.1?}");
                    sections.push(output.markdown);
                    let mut data = output.data;
                    if let Value::Map(entries) = &mut data {
                        entries.push(("wall_clock_ms".to_string(), Value::F64(wall_ms)));
                    }
                    records.push(data);
                }
                Err(payload) => {
                    let reason = panic_message(payload.as_ref());
                    eprintln!("  {id} FAILED after {elapsed:.1?}: {reason}");
                    sections.push(format!(
                        "## {id} — FAILED\n\nThe experiment panicked and was \
                         contained; the remaining experiments still ran.\n\n\
                         ```\n{reason}\n```\n"
                    ));
                    records.push(Value::Map(vec![
                        ("id".to_string(), Value::Str(id.to_string())),
                        ("failed".to_string(), Value::Bool(true)),
                        ("error".to_string(), Value::Str(reason)),
                        ("wall_clock_ms".to_string(), Value::F64(wall_ms)),
                    ]));
                    failed.push(id.to_string());
                }
            }
        }
    }
    let doc = sections.join("\n");
    match out_path {
        Some(p) => {
            let mut file = std::fs::File::create(&p)
                .map_err(|e| format!("cannot create output file `{p}`: {e}"))?;
            file.write_all(doc.as_bytes())
                .map_err(|e| format!("cannot write output file `{p}`: {e}"))?;
            eprintln!("wrote {p}");
        }
        None => {
            if json_path.is_none() {
                println!("{doc}");
            }
        }
    }
    if let Some(p) = json_path {
        let report = Value::Map(vec![
            (
                "schema_version".to_string(),
                Value::U64(delta_bench::BENCH_SCHEMA_VERSION),
            ),
            ("quick".to_string(), Value::Bool(quick)),
            ("experiments".to_string(), Value::Seq(records)),
        ]);
        let mut file =
            std::fs::File::create(&p).map_err(|e| format!("cannot create json file `{p}`: {e}"))?;
        file.write_all(serde::json::to_string(&report).as_bytes())
            .map_err(|e| format!("cannot write json file `{p}`: {e}"))?;
        file.write_all(b"\n")
            .map_err(|e| format!("cannot write json file `{p}`: {e}"))?;
        eprintln!("wrote {p}");
    }
    if !failed.is_empty() {
        return Err(format!(
            "{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        )
        .into());
    }
    Ok(())
}

fn header(quick: bool) -> String {
    format!(
        "# EXPERIMENTS — paper claims vs. measurements\n\n\
         Regenerated by `cargo run --release -p delta-bench --bin experiments -- all \
         --out EXPERIMENTS.md`{}. Round counts are LOCAL rounds from the `RoundLedger`; \
         see DESIGN.md §1 for the accounting rules and §5 for the experiment ↔ claim \
         index. The reproduction targets the *shape* of each claim (who wins, growth \
         rates, bounds holding), not the authors' absolute constants.\n",
        if quick {
            " (quick mode: reduced sizes)"
        } else {
            ""
        }
    )
}
