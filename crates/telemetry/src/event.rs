//! The structured event vocabulary emitted by probes.

use serde::{Deserialize, Error, Serialize, Value};

/// How a round charge entered the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// A real communication-round charge.
    Real,
    /// A constant number of rounds hidden in O(1) bookkeeping.
    Constant,
    /// Rounds accounted to a virtual (simulated-in-parallel) phase.
    Virtual,
    /// An entry absorbed from a sub-ledger under a phase prefix.
    Absorbed,
}

impl ChargeKind {
    fn as_str(self) -> &'static str {
        match self {
            ChargeKind::Real => "real",
            ChargeKind::Constant => "constant",
            ChargeKind::Virtual => "virtual",
            ChargeKind::Absorbed => "absorbed",
        }
    }

    fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "real" => Ok(ChargeKind::Real),
            "constant" => Ok(ChargeKind::Constant),
            "virtual" => Ok(ChargeKind::Virtual),
            "absorbed" => Ok(ChargeKind::Absorbed),
            other => Err(Error::new(format!("unknown charge kind `{other}`"))),
        }
    }
}

/// What kind of injected fault an [`Event::Fault`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A node crashed: its state froze mid-run and it will never output.
    Crash,
    /// Messages were dropped in transit (aggregated per round).
    Drop,
    /// Nodes were stalled by bounded-asynchrony jitter (aggregated per
    /// round).
    Stall,
    /// A pipeline-level retry: a leftover component struck by faults was
    /// rolled back and re-solved.
    Retry,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Drop => "drop",
            FaultKind::Stall => "stall",
            FaultKind::Retry => "retry",
        }
    }

    fn parse(s: &str) -> Result<Self, Error> {
        match s {
            "crash" => Ok(FaultKind::Crash),
            "drop" => Ok(FaultKind::Drop),
            "stall" => Ok(FaultKind::Stall),
            "retry" => Ok(FaultKind::Retry),
            other => Err(Error::new(format!("unknown fault kind `{other}`"))),
        }
    }
}

/// One structured trace event.
///
/// Wall-clock time appears only in [`Event::SpanExit`]; everything else
/// is a pure function of the run, so [`Event::normalized`] (which zeroes
/// `wall_ns`) makes two traces of the same seeded run comparable with
/// `==`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A phase span opened. `path` is `/`-separated, e.g.
    /// `"pipeline/phase 1: balanced matching"`.
    SpanEnter {
        /// Span path.
        path: String,
    },
    /// A phase span closed.
    SpanExit {
        /// Span path, matching the corresponding [`Event::SpanEnter`].
        path: String,
        /// Communication rounds charged while the span was open.
        rounds: u64,
        /// Wall-clock duration of the span in nanoseconds.
        wall_ns: u64,
        /// Counters accumulated on the span, in first-touch order.
        counters: Vec<(String, i64)>,
    },
    /// Rounds were charged to the round ledger.
    Charge {
        /// Ledger phase path (absorbed entries carry their prefix).
        path: String,
        /// Number of rounds charged.
        rounds: u64,
        /// Charge flavour.
        kind: ChargeKind,
    },
    /// Per-round snapshot of a metric registry.
    ///
    /// # Counter conventions
    ///
    /// The `messages_sent` counter emitted by the state-exchange executor
    /// charges every **live** node one message per incident edge per round:
    /// reading a halted neighbor's frozen state still counts, because in
    /// the LOCAL model the halted node's final state must still be
    /// (re)transmitted for the reader to see it. Edges between two halted
    /// nodes charge nothing — neither endpoint reads. Consequently
    /// `messages_sent` for a round equals the sum of live-node degrees at
    /// the start of that round, and per-round values sum to the run total
    /// regardless of thread count (the parallel stepping path accumulates
    /// the same per-round figures).
    Round {
        /// Which executor/loop emitted this (e.g. `"localsim"`,
        /// `"congest"`).
        scope: String,
        /// Round index, starting at 0.
        round: u64,
        /// Counter values for this round, in registration order.
        counters: Vec<(String, i64)>,
        /// Gauge values at the end of this round.
        gauges: Vec<(String, f64)>,
    },
    /// Per-round CONGEST bandwidth accounting.
    CongestRound {
        /// Round index, starting at 0.
        round: u64,
        /// Messages delivered this round.
        messages: u64,
        /// Widest message this round, in bits.
        max_bits: u64,
        /// Total bits sent this round.
        total_bits: u64,
        /// Histogram of message widths: `(bucket_max_bits, count)` where
        /// buckets are powers of two; a message of width `w` lands in the
        /// smallest bucket with `w <= bucket_max_bits`.
        width_hist: Vec<(u64, u64)>,
    },
    /// A scalar observation outside any round loop.
    Metric {
        /// Emitting scope.
        scope: String,
        /// Metric name.
        name: String,
        /// Observed value.
        value: f64,
    },
    /// An injected fault fired (fault-plan runs only; fault-free runs
    /// never emit this variant, so their traces are byte-stable).
    ///
    /// Crashes are reported one event per node, in ascending node order;
    /// drops and stalls are aggregated into one event per round with
    /// `node: None` and the affected count.
    Fault {
        /// Emitting executor/loop scope (e.g. `"localsim"`, `"pipeline"`).
        scope: String,
        /// Round index the fault fired in, starting at 0 (for
        /// [`FaultKind::Retry`] this is the retry attempt number).
        round: u64,
        /// What happened.
        kind: FaultKind,
        /// The affected node, for per-node faults (crashes).
        node: Option<u64>,
        /// How many units were affected (nodes stalled, messages dropped,
        /// vertices rolled back; `1` for a single crash).
        count: u64,
    },
    /// The supervisor quarantined a failed unit and re-solved it with the
    /// baseline path (`baselines::brooks`). Carries no wall-clock data, so
    /// normalized streams from supervised runs stay comparable with `==`.
    Degraded {
        /// Emitting scope (`"supervisor"`).
        scope: String,
        /// Index of the quarantined unit (leftover-component index).
        unit: u64,
        /// Why the fast path was abandoned (panic payload, budget
        /// overrun, or pipeline error text).
        reason: String,
        /// Rounds charged for the baseline re-solve.
        rounds: u64,
    },
    /// The supervisor committed a phase-boundary checkpoint. Emitted only
    /// when checkpointing is enabled; the cursor slug names the completed
    /// phase and `rounds` is the ledger total at the boundary.
    Checkpoint {
        /// Phase-cursor slug (e.g. `"post-shattering"`).
        cursor: String,
        /// Ledger total at the boundary.
        rounds: u64,
    },
}

impl Event {
    /// The event with wall-clock fields zeroed, for determinism
    /// comparisons across runs.
    #[must_use]
    pub fn normalized(&self) -> Event {
        match self {
            Event::SpanExit {
                path,
                rounds,
                counters,
                ..
            } => Event::SpanExit {
                path: path.clone(),
                rounds: *rounds,
                wall_ns: 0,
                counters: counters.clone(),
            },
            other => other.clone(),
        }
    }

    /// The event's type tag as it appears in the JSON encoding.
    #[must_use]
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::SpanEnter { .. } => "span_enter",
            Event::SpanExit { .. } => "span_exit",
            Event::Charge { .. } => "charge",
            Event::Round { .. } => "round",
            Event::CongestRound { .. } => "congest_round",
            Event::Metric { .. } => "metric",
            Event::Fault { .. } => "fault",
            Event::Degraded { .. } => "degraded",
            Event::Checkpoint { .. } => "checkpoint",
        }
    }
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn pairs_i(entries: &[(String, i64)]) -> Value {
    Value::Map(
        entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect(),
    )
}

fn pairs_f(entries: &[(String, f64)]) -> Value {
    Value::Map(
        entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect(),
    )
}

fn unpairs_i(v: &Value) -> Result<Vec<(String, i64)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), i64::from_value(v)?)))
            .collect(),
        other => Err(Error::new(format!("expected object, found {other:?}"))),
    }
}

fn unpairs_f(v: &Value) -> Result<Vec<(String, f64)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), f64::from_value(v)?)))
            .collect(),
        other => Err(Error::new(format!("expected object, found {other:?}"))),
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![("type".to_string(), s(self.type_tag()))];
        match self {
            Event::SpanEnter { path } => {
                m.push(("path".to_string(), s(path)));
            }
            Event::SpanExit {
                path,
                rounds,
                wall_ns,
                counters,
            } => {
                m.push(("path".to_string(), s(path)));
                m.push(("rounds".to_string(), rounds.to_value()));
                m.push(("wall_ns".to_string(), wall_ns.to_value()));
                m.push(("counters".to_string(), pairs_i(counters)));
            }
            Event::Charge { path, rounds, kind } => {
                m.push(("path".to_string(), s(path)));
                m.push(("rounds".to_string(), rounds.to_value()));
                m.push(("kind".to_string(), s(kind.as_str())));
            }
            Event::Round {
                scope,
                round,
                counters,
                gauges,
            } => {
                m.push(("scope".to_string(), s(scope)));
                m.push(("round".to_string(), round.to_value()));
                m.push(("counters".to_string(), pairs_i(counters)));
                m.push(("gauges".to_string(), pairs_f(gauges)));
            }
            Event::CongestRound {
                round,
                messages,
                max_bits,
                total_bits,
                width_hist,
            } => {
                m.push(("round".to_string(), round.to_value()));
                m.push(("messages".to_string(), messages.to_value()));
                m.push(("max_bits".to_string(), max_bits.to_value()));
                m.push(("total_bits".to_string(), total_bits.to_value()));
                m.push(("width_hist".to_string(), width_hist.to_value()));
            }
            Event::Metric { scope, name, value } => {
                m.push(("scope".to_string(), s(scope)));
                m.push(("name".to_string(), s(name)));
                m.push(("value".to_string(), value.to_value()));
            }
            Event::Fault {
                scope,
                round,
                kind,
                node,
                count,
            } => {
                m.push(("scope".to_string(), s(scope)));
                m.push(("round".to_string(), round.to_value()));
                m.push(("kind".to_string(), s(kind.as_str())));
                m.push(("node".to_string(), node.to_value()));
                m.push(("count".to_string(), count.to_value()));
            }
            Event::Degraded {
                scope,
                unit,
                reason,
                rounds,
            } => {
                m.push(("scope".to_string(), s(scope)));
                m.push(("unit".to_string(), unit.to_value()));
                m.push(("reason".to_string(), s(reason)));
                m.push(("rounds".to_string(), rounds.to_value()));
            }
            Event::Checkpoint { cursor, rounds } => {
                m.push(("cursor".to_string(), s(cursor)));
                m.push(("rounds".to_string(), rounds.to_value()));
            }
        }
        Value::Map(m)
    }
}

impl<'de> Deserialize<'de> for Event {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let tag = String::from_value(v.field("type")?)?;
        match tag.as_str() {
            "span_enter" => Ok(Event::SpanEnter {
                path: String::from_value(v.field("path")?)?,
            }),
            "span_exit" => Ok(Event::SpanExit {
                path: String::from_value(v.field("path")?)?,
                rounds: u64::from_value(v.field("rounds")?)?,
                wall_ns: u64::from_value(v.field("wall_ns")?)?,
                counters: unpairs_i(v.field("counters")?)?,
            }),
            "charge" => Ok(Event::Charge {
                path: String::from_value(v.field("path")?)?,
                rounds: u64::from_value(v.field("rounds")?)?,
                kind: ChargeKind::parse(&String::from_value(v.field("kind")?)?)?,
            }),
            "round" => Ok(Event::Round {
                scope: String::from_value(v.field("scope")?)?,
                round: u64::from_value(v.field("round")?)?,
                counters: unpairs_i(v.field("counters")?)?,
                gauges: unpairs_f(v.field("gauges")?)?,
            }),
            "congest_round" => Ok(Event::CongestRound {
                round: u64::from_value(v.field("round")?)?,
                messages: u64::from_value(v.field("messages")?)?,
                max_bits: u64::from_value(v.field("max_bits")?)?,
                total_bits: u64::from_value(v.field("total_bits")?)?,
                width_hist: Vec::from_value(v.field("width_hist")?)?,
            }),
            "metric" => Ok(Event::Metric {
                scope: String::from_value(v.field("scope")?)?,
                name: String::from_value(v.field("name")?)?,
                value: f64::from_value(v.field("value")?)?,
            }),
            "fault" => Ok(Event::Fault {
                scope: String::from_value(v.field("scope")?)?,
                round: u64::from_value(v.field("round")?)?,
                kind: FaultKind::parse(&String::from_value(v.field("kind")?)?)?,
                node: Option::<u64>::from_value(v.field("node")?)?,
                count: u64::from_value(v.field("count")?)?,
            }),
            "degraded" => Ok(Event::Degraded {
                scope: String::from_value(v.field("scope")?)?,
                unit: u64::from_value(v.field("unit")?)?,
                reason: String::from_value(v.field("reason")?)?,
                rounds: u64::from_value(v.field("rounds")?)?,
            }),
            "checkpoint" => Ok(Event::Checkpoint {
                cursor: String::from_value(v.field("cursor")?)?,
                rounds: u64::from_value(v.field("rounds")?)?,
            }),
            other => Err(Error::new(format!("unknown event type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &Event) {
        let json = serde::json::to_string(e);
        let back: Event = serde::json::from_str(&json).unwrap();
        assert_eq!(&back, e, "round trip through {json}");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(&Event::SpanEnter {
            path: "pipeline/acd".into(),
        });
        round_trip(&Event::SpanExit {
            path: "pipeline/acd".into(),
            rounds: 12,
            wall_ns: 34_567,
            counters: vec![("cliques".into(), 3), ("delta".into(), -1)],
        });
        round_trip(&Event::Charge {
            path: "hard/phase 1".into(),
            rounds: 4,
            kind: ChargeKind::Virtual,
        });
        round_trip(&Event::Round {
            scope: "localsim".into(),
            round: 7,
            counters: vec![("live".into(), 100), ("halted".into(), 28)],
            gauges: vec![("halted_fraction".into(), 0.28)],
        });
        round_trip(&Event::CongestRound {
            round: 2,
            messages: 40,
            max_bits: 17,
            total_bits: 512,
            width_hist: vec![(16, 30), (32, 10)],
        });
        round_trip(&Event::Metric {
            scope: "bench".into(),
            name: "wall_clock_ms".into(),
            value: 12.5,
        });
        round_trip(&Event::Fault {
            scope: "localsim".into(),
            round: 9,
            kind: FaultKind::Crash,
            node: Some(17),
            count: 1,
        });
        round_trip(&Event::Fault {
            scope: "localsim/msg".into(),
            round: 2,
            kind: FaultKind::Drop,
            node: None,
            count: 5,
        });
        round_trip(&Event::Degraded {
            scope: "supervisor".into(),
            unit: 3,
            reason: "panic: chaos".into(),
            rounds: 17,
        });
        round_trip(&Event::Checkpoint {
            cursor: "post-shattering".into(),
            rounds: 120,
        });
    }

    #[test]
    fn supervisor_variants_are_normalization_stable() {
        // Neither variant carries wall-clock data, so normalization must
        // be the identity — supervised traces stay `==`-comparable.
        let d = Event::Degraded {
            scope: "supervisor".into(),
            unit: 0,
            reason: "round budget".into(),
            rounds: 9,
        };
        assert_eq!(d.normalized(), d);
        assert_eq!(d.type_tag(), "degraded");
        let c = Event::Checkpoint {
            cursor: "acd".into(),
            rounds: 1,
        };
        assert_eq!(c.normalized(), c);
        assert_eq!(c.type_tag(), "checkpoint");
    }

    #[test]
    fn fault_kind_parse_rejects_unknown() {
        assert!(FaultKind::parse("meteor").is_err());
    }

    #[test]
    fn normalized_zeroes_wall_clock_only() {
        let e = Event::SpanExit {
            path: "p".into(),
            rounds: 3,
            wall_ns: 999,
            counters: vec![],
        };
        match e.normalized() {
            Event::SpanExit {
                rounds, wall_ns, ..
            } => {
                assert_eq!(rounds, 3);
                assert_eq!(wall_ns, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = Event::Metric {
            scope: "s".into(),
            name: "n".into(),
            value: 1.0,
        };
        assert_eq!(r.normalized(), r);
    }

    #[test]
    fn charge_kind_parse_rejects_unknown() {
        assert!(ChargeKind::parse("bogus").is_err());
    }
}
