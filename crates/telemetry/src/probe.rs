//! The [`Probe`] handle and [`Span`] phase guard.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::event::Event;
use crate::metrics::MetricsHub;
use crate::sink::Sink;

/// A cheaply cloneable telemetry handle.
///
/// A probe is either disabled (the default — every operation reduces to
/// a branch on `None`) or carries a shared [`Sink`]. Independently of the
/// sink it may carry a [`MetricsHub`]; instrumented layers that receive
/// the probe record whole-run metrics into the hub even when no event
/// sink is attached. Instrumented code takes a `&Probe` or stores a
/// clone; there is no global state.
#[derive(Clone, Default)]
pub struct Probe {
    sink: Option<Arc<dyn Sink>>,
    metrics: Option<Arc<MetricsHub>>,
}

impl Probe {
    /// A probe that drops everything. Equivalent to `Probe::default()`.
    #[must_use]
    pub fn disabled() -> Self {
        Probe::default()
    }

    /// A probe forwarding every event to `sink`.
    #[must_use]
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Probe {
            sink: Some(sink),
            metrics: None,
        }
    }

    /// Attaches a shared metrics hub; instrumented layers reached by this
    /// probe (or its clones) record counters, watermarks, histograms, and
    /// worker utilization into it.
    #[must_use]
    pub fn with_metrics(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// The attached metrics hub, if any.
    #[inline]
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsHub>> {
        self.metrics.as_ref()
    }

    /// Flushes the attached sink (see [`Sink::flush`]). A no-op when
    /// disabled or when the sink buffers nothing.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }

    /// Convenience wrapper around [`Probe::new`] for owned sinks.
    #[must_use]
    pub fn from_sink<S: Sink + 'static>(sink: S) -> Self {
        Probe::new(Arc::new(sink))
    }

    /// Whether any sink is attached.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records an already-constructed event.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Records an event constructed lazily — the closure only runs when a
    /// sink is attached, so the disabled path allocates nothing.
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.record(&make());
        }
    }

    /// Opens a phase span. Emits [`Event::SpanEnter`] now and
    /// [`Event::SpanExit`] when the returned guard is dropped (or
    /// [`Span::finish`]ed).
    #[must_use]
    pub fn span(&self, path: impl Into<String>) -> Span {
        if self.enabled() {
            let path = path.into();
            self.emit(Event::SpanEnter { path: path.clone() });
            Span {
                probe: self.clone(),
                path,
                start: Some(Instant::now()),
                rounds: 0,
                counters: Vec::new(),
                closed: false,
            }
        } else {
            Span {
                probe: Probe::disabled(),
                path: String::new(),
                start: None,
                rounds: 0,
                counters: Vec::new(),
                closed: true,
            }
        }
    }
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A drop guard measuring one phase: wall-clock from construction to
/// drop, plus explicitly charged rounds and named counters.
pub struct Span {
    probe: Probe,
    path: String,
    start: Option<Instant>,
    rounds: u64,
    counters: Vec<(String, i64)>,
    closed: bool,
}

impl Span {
    /// The span path (empty on a disabled span).
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Charges communication rounds to this span.
    pub fn add_rounds(&mut self, rounds: u64) {
        self.rounds += rounds;
    }

    /// Adds `delta` to the named span counter (created at zero on first
    /// touch).
    pub fn count(&mut self, name: &str, delta: i64) {
        if self.closed {
            return;
        }
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += delta;
        } else {
            self.counters.push((name.to_string(), delta));
        }
    }

    /// Closes the span now, emitting [`Event::SpanExit`].
    pub fn finish(mut self) {
        self.emit_exit();
    }

    fn emit_exit(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let wall_ns = self.start.map_or(0, |s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });
        self.probe.emit(Event::SpanExit {
            path: std::mem::take(&mut self.path),
            rounds: self.rounds,
            wall_ns,
            counters: std::mem::take(&mut self.counters),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    #[test]
    fn span_emits_enter_and_exit() {
        let sink = Arc::new(RecordingSink::new());
        let probe = Probe::new(sink.clone());
        {
            let mut span = probe.span("pipeline/acd");
            span.add_rounds(5);
            span.count("cliques", 2);
            span.count("cliques", 1);
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::SpanEnter {
                path: "pipeline/acd".into()
            }
        );
        match &events[1] {
            Event::SpanExit {
                path,
                rounds,
                counters,
                ..
            } => {
                assert_eq!(path, "pipeline/acd");
                assert_eq!(*rounds, 5);
                assert_eq!(counters, &vec![("cliques".to_string(), 3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn finish_prevents_double_emit() {
        let sink = Arc::new(RecordingSink::new());
        let probe = Probe::new(sink.clone());
        let span = probe.span("p");
        span.finish();
        assert_eq!(sink.events().len(), 2);
    }

    #[test]
    fn disabled_probe_emits_nothing() {
        let probe = Probe::disabled();
        assert!(!probe.enabled());
        let mut span = probe.span("p");
        span.add_rounds(10);
        span.count("x", 1);
        drop(span);
        probe.emit_with(|| panic!("must not construct events when disabled"));
    }
}
