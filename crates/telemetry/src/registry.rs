//! Per-round metric series: a [`Registry`] of named [`Counter`]s and
//! [`Gauge`]s, snapshotted into one [`Event::Round`] per simulated round.

use std::cell::Cell;
use std::rc::Rc;

use crate::event::Event;
use crate::probe::Probe;

/// A monotonically named integer counter, reset after every round
/// snapshot. Handles are cheap clones sharing one cell.
#[derive(Clone, Debug)]
pub struct Counter {
    name: Rc<str>,
    value: Rc<Cell<i64>>,
}

impl Counter {
    /// The counter's registered name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.set(self.value.get() + delta);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the current value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.set(value);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.get()
    }

    fn reset(&self) {
        self.value.set(0);
    }
}

/// A named instantaneous value; unlike counters, gauges persist across
/// round snapshots.
#[derive(Clone, Debug)]
pub struct Gauge {
    name: Rc<str>,
    value: Rc<Cell<f64>>,
}

impl Gauge {
    /// The gauge's registered name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.value.set(value);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> f64 {
        self.value.get()
    }
}

/// A set of counters and gauges emitted together once per round.
///
/// Not thread-safe by design — it lives inside a (single-threaded)
/// simulator loop; the emitted events go through the thread-safe sink.
#[derive(Default, Debug)]
pub struct Registry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some(c) = self.counters.iter().find(|c| &*c.name == name) {
            return c.clone();
        }
        let c = Counter {
            name: Rc::from(name),
            value: Rc::new(Cell::new(0)),
        };
        self.counters.push(c.clone());
        c
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.iter().find(|g| &*g.name == name) {
            return g.clone();
        }
        let g = Gauge {
            name: Rc::from(name),
            value: Rc::new(Cell::new(0.0)),
        };
        self.gauges.push(g.clone());
        g
    }

    /// Emits one [`Event::Round`] snapshot for `round` and resets all
    /// counters (gauges keep their values).
    pub fn emit_round(&self, probe: &Probe, scope: &str, round: u64) {
        probe.emit_with(|| Event::Round {
            scope: scope.to_string(),
            round,
            counters: self
                .counters
                .iter()
                .map(|c| (c.name.to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| (g.name.to_string(), g.get()))
                .collect(),
        });
        for c in &self.counters {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;
    use std::sync::Arc;

    #[test]
    fn counters_reset_per_round_gauges_persist() {
        let sink = Arc::new(RecordingSink::new());
        let probe = Probe::new(sink.clone());
        let mut reg = Registry::new();
        let msgs = reg.counter("messages");
        let frac = reg.gauge("halted_fraction");

        msgs.add(7);
        frac.set(0.25);
        reg.emit_round(&probe, "sim", 0);
        msgs.inc();
        reg.emit_round(&probe, "sim", 1);

        let events = sink.events();
        assert_eq!(
            events[0],
            Event::Round {
                scope: "sim".into(),
                round: 0,
                counters: vec![("messages".into(), 7)],
                gauges: vec![("halted_fraction".into(), 0.25)],
            }
        );
        assert_eq!(
            events[1],
            Event::Round {
                scope: "sim".into(),
                round: 1,
                counters: vec![("messages".into(), 1)],
                gauges: vec![("halted_fraction".into(), 0.25)],
            }
        );
    }

    #[test]
    fn registry_deduplicates_by_name() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn disabled_probe_still_resets() {
        let probe = Probe::disabled();
        let mut reg = Registry::new();
        let c = reg.counter("x");
        c.add(9);
        reg.emit_round(&probe, "sim", 0);
        assert_eq!(c.get(), 0);
    }
}
