//! Event sinks: where probe output goes.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// Receives structured events. Implementations must be thread-safe; the
/// simulator may emit from worker contexts.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Pushes buffered output to durable storage. A no-op for in-memory
    /// sinks. The supervisor calls this at phase boundaries and when a
    /// contained panic is caught, so a crashing run's trace file holds
    /// every event emitted before the crash site.
    fn flush(&self) {}
}

/// Discards every event. Exists so "instrumented but nobody listening"
/// can be benchmarked against a probe-free run.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory, for tests and in-process reporting.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// An empty recording sink.
    #[must_use]
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drains and returns all recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// All events with wall-clock fields zeroed — the deterministic view
    /// of a run (see [`Event::normalized`]).
    #[must_use]
    pub fn normalized(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(Event::normalized)
            .collect()
    }

    /// `(path, rounds, wall_ns)` for every closed span, in exit order.
    #[must_use]
    pub fn span_exits(&self) -> Vec<(String, u64, u64)> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter_map(|e| match e {
                Event::SpanExit {
                    path,
                    rounds,
                    wall_ns,
                    ..
                } => Some((path.clone(), *rounds, *wall_ns)),
                _ => None,
            })
            .collect()
    }

    /// Number of per-round snapshots recorded for `scope`.
    #[must_use]
    pub fn rounds_seen(&self, scope: &str) -> u64 {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, Event::Round { scope: s, .. } if s == scope))
            .count() as u64
    }
}

impl Sink for RecordingSink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Duplicates every event to each inner sink, in order. Lets one probe
/// feed a trace file and an in-memory profile at the same time.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A fan-out over `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// A bounded ring buffer of the most recent events — a crash "black box".
///
/// Records like any sink but keeps only the last `capacity` events; when
/// a supervised run panics or a repro bundle is captured, the supervisor
/// embeds [`FlightRecorder::tail`] into the bundle so `delta-color
/// replay` can print what the run was doing right before it failed.
/// Overwritten events are counted, not silently lost.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained, oldest first.
    #[must_use]
    pub fn tail(&self) -> Vec<Event> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for FlightRecorder {
    fn record(&self, event: &Event) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event.clone());
    }
}

/// Writes one JSON object per event — the on-disk trace format.
///
/// The schema is documented in `docs/OBSERVABILITY.md`; every line is a
/// flat object with a `"type"` discriminator.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = serde::json::to_string(event);
        let mut out = self.out.lock().unwrap();
        // A failing trace write must not abort the run being traced.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        // A failing flush must not abort the run being traced either.
        let _ = JsonlSink::flush(self);
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ChargeKind;

    #[test]
    fn recording_sink_accumulates() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.record(&Event::SpanEnter { path: "a".into() });
        sink.record(&Event::Charge {
            path: "a".into(),
            rounds: 1,
            kind: ChargeKind::Real,
        });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        sink.record(&Event::SpanEnter {
            path: "pipeline".into(),
        });
        sink.record(&Event::Round {
            scope: "sim".into(),
            round: 0,
            counters: vec![("live".into(), 4)],
            gauges: vec![],
        });
        drop(sink);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde::json::from_str(line).unwrap();
            let again = serde::json::to_string(&back);
            assert_eq!(again, line);
        }
    }

    #[test]
    fn fanout_duplicates_to_every_sink() {
        let a = std::sync::Arc::new(RecordingSink::new());
        let b = std::sync::Arc::new(RecordingSink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&Event::SpanEnter { path: "x".into() });
        assert_eq!(a.len(), 1);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn flight_recorder_keeps_only_the_tail() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5u64 {
            rec.record(&Event::Metric {
                scope: "t".into(),
                name: "i".into(),
                value: i as f64,
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let names: Vec<f64> = rec
            .tail()
            .iter()
            .map(|e| match e {
                Event::Metric { value, .. } => *value,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(names, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn jsonl_sink_flush_via_trait_writes_through() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(io::BufWriter::with_capacity(1 << 20, buf.clone()));
        sink.record(&Event::SpanEnter { path: "p".into() });
        // The 1 MiB BufWriter holds the line until flushed.
        assert!(buf.0.lock().unwrap().is_empty());
        Sink::flush(&sink);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn fanout_flush_reaches_inner_sinks() {
        let buf = SharedBuf::default();
        let jsonl = std::sync::Arc::new(JsonlSink::new(io::BufWriter::with_capacity(
            1 << 20,
            buf.clone(),
        )));
        let fan = FanoutSink::new(vec![
            std::sync::Arc::new(RecordingSink::new()) as std::sync::Arc<dyn Sink>,
            jsonl,
        ]);
        fan.record(&Event::SpanEnter { path: "p".into() });
        assert!(buf.0.lock().unwrap().is_empty());
        Sink::flush(&fan);
        assert!(!buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn span_exits_filters_and_orders() {
        let sink = RecordingSink::new();
        sink.record(&Event::SpanEnter { path: "a".into() });
        sink.record(&Event::SpanExit {
            path: "a".into(),
            rounds: 2,
            wall_ns: 10,
            counters: vec![],
        });
        assert_eq!(sink.span_exits(), vec![("a".to_string(), 2, 10)]);
        assert_eq!(sink.rounds_seen("sim"), 0);
    }
}
