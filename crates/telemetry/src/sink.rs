//! Event sinks: where probe output goes.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Receives structured events. Implementations must be thread-safe; the
/// simulator may emit from worker contexts.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
}

/// Discards every event. Exists so "instrumented but nobody listening"
/// can be benchmarked against a probe-free run.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory, for tests and in-process reporting.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// An empty recording sink.
    #[must_use]
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drains and returns all recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// All events with wall-clock fields zeroed — the deterministic view
    /// of a run (see [`Event::normalized`]).
    #[must_use]
    pub fn normalized(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(Event::normalized)
            .collect()
    }

    /// `(path, rounds, wall_ns)` for every closed span, in exit order.
    #[must_use]
    pub fn span_exits(&self) -> Vec<(String, u64, u64)> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter_map(|e| match e {
                Event::SpanExit {
                    path,
                    rounds,
                    wall_ns,
                    ..
                } => Some((path.clone(), *rounds, *wall_ns)),
                _ => None,
            })
            .collect()
    }

    /// Number of per-round snapshots recorded for `scope`.
    #[must_use]
    pub fn rounds_seen(&self, scope: &str) -> u64 {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, Event::Round { scope: s, .. } if s == scope))
            .count() as u64
    }
}

impl Sink for RecordingSink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Duplicates every event to each inner sink, in order. Lets one probe
/// feed a trace file and an in-memory profile at the same time.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A fan-out over `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

/// Writes one JSON object per event — the on-disk trace format.
///
/// The schema is documented in `docs/OBSERVABILITY.md`; every line is a
/// flat object with a `"type"` discriminator.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = serde::json::to_string(event);
        let mut out = self.out.lock().unwrap();
        // A failing trace write must not abort the run being traced.
        let _ = writeln!(out, "{line}");
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ChargeKind;

    #[test]
    fn recording_sink_accumulates() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.record(&Event::SpanEnter { path: "a".into() });
        sink.record(&Event::Charge {
            path: "a".into(),
            rounds: 1,
            kind: ChargeKind::Real,
        });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        sink.record(&Event::SpanEnter {
            path: "pipeline".into(),
        });
        sink.record(&Event::Round {
            scope: "sim".into(),
            round: 0,
            counters: vec![("live".into(), 4)],
            gauges: vec![],
        });
        drop(sink);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde::json::from_str(line).unwrap();
            let again = serde::json::to_string(&back);
            assert_eq!(again, line);
        }
    }

    #[test]
    fn fanout_duplicates_to_every_sink() {
        let a = std::sync::Arc::new(RecordingSink::new());
        let b = std::sync::Arc::new(RecordingSink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&Event::SpanEnter { path: "x".into() });
        assert_eq!(a.len(), 1);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn span_exits_filters_and_orders() {
        let sink = RecordingSink::new();
        sink.record(&Event::SpanEnter { path: "a".into() });
        sink.record(&Event::SpanExit {
            path: "a".into(),
            rounds: 2,
            wall_ns: 10,
            counters: vec![],
        });
        assert_eq!(sink.span_exits(), vec![("a".to_string(), 2, 10)]);
        assert_eq!(sink.rounds_seen("sim"), 0);
    }
}
