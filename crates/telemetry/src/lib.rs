//! Structured run traces for the Δ-coloring pipeline.
//!
//! The crate is deliberately tiny and dependency-light: a [`Probe`] is a
//! cheaply cloneable handle that is either *disabled* (every operation is
//! a branch on `None`) or carries a shared [`Sink`] receiving structured
//! [`Event`]s. Instrumented code never formats strings or allocates on
//! the disabled path — use [`Probe::emit_with`] so event construction is
//! lazy.
//!
//! Three sinks cover the use cases in this workspace:
//!
//! * [`NullSink`] — discards events; used by the overhead benchmark to
//!   show instrumentation is free when nobody listens.
//! * [`RecordingSink`] — collects events in memory for tests and for the
//!   `--profile` / `--json` reporting paths.
//! * [`JsonlSink`] — writes one JSON object per event, the on-disk trace
//!   format documented in `docs/OBSERVABILITY.md`.
//!
//! Phase structure is reported through [`Span`]s (wall-clock + rounds
//! charged), per-round series through a [`Registry`] of [`Counter`]s and
//! [`Gauge`]s snapshotted once per simulated round.

pub mod event;
pub mod metrics;
pub mod probe;
pub mod registry;
pub mod sink;

pub use event::{ChargeKind, Event, FaultKind};
pub use metrics::{
    Histogram, LocalHistogram, MetricCounter, MetricsHub, Watermark, WorkerLane,
    WorkerLaneSnapshot, METRICS_SCHEMA_VERSION,
};
pub use probe::{Probe, Span};
pub use registry::{Counter, Gauge, Registry};
pub use sink::{FanoutSink, FlightRecorder, JsonlSink, NullSink, RecordingSink, Sink};
