//! Lock-cheap process metrics: counters, watermark gauges, log₂-bucketed
//! histograms, and per-worker utilization lanes.
//!
//! The [`Registry`](crate::Registry) in this crate serves *per-round
//! series* — single-threaded counters snapshotted and reset after every
//! simulated round. This module is the complementary *whole-run* layer: a
//! [`MetricsHub`] is a thread-safe registry of monotonic counters,
//! high-watermark gauges, and log₂ histograms that instrumented code
//! updates with relaxed atomics (no locks on the hot path; registration
//! takes a lock once, handles are `Arc`s thereafter).
//!
//! # Determinism contract
//!
//! Every update is a commutative reduction — counters add, watermarks
//! take a max, histogram buckets add — so totals are independent of
//! thread interleaving. The nondeterministic inputs are wall-clock
//! observations (by convention in metrics whose name ends in `_ns`),
//! metrics derived from the dynamic schedule (suffix `_sched`, e.g. the
//! per-epoch steal counts — *which* worker over-claims depends on OS
//! scheduling even though the result does not), and the per-worker lane
//! table (which worker claimed which unit is scheduling-dependent).
//! [`MetricsHub::deterministic_snapshot`] excludes exactly those, so the
//! deterministic view of a seeded run is bit-identical at every thread
//! count — pinned by `crates/core/tests/pipeline_parallel.rs`.
//!
//! Hot loops that cannot afford even an uncontended atomic per event can
//! observe into a plain [`LocalHistogram`] shard and merge it into the
//! shared histogram once per round or segment; the merge is the same
//! commutative bucket addition, so shard-then-merge and direct observation
//! produce identical snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Value;

/// Version of the snapshot JSON schema emitted by
/// [`MetricsHub::snapshot_value`] (and `--metrics-out`).
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Number of histogram buckets: one for zero plus one per power of two.
const BUCKETS: usize = 65;

/// Bucket index of a value: `0` holds zeroes, bucket `i ≥ 1` holds
/// `2^(i-1) <= v < 2^i`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, used as the percentile estimate.
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct MetricCounter(Arc<AtomicU64>);

impl MetricCounter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if delta != 0 {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-watermark gauge: `record` keeps the maximum ever observed.
///
/// Max is commutative, so watermarks stay deterministic under parallel
/// recording (unlike a set-last gauge, whose value would depend on the
/// thread schedule).
#[derive(Clone, Debug, Default)]
pub struct Watermark(Arc<AtomicU64>);

impl Watermark {
    /// Raises the watermark to `v` if it is higher.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current watermark.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram over `u64` observations.
///
/// 65 buckets (zero plus one per power of two), plus exact count, sum,
/// and max. Observation is three relaxed atomic RMWs and one `fetch_max`;
/// there are no locks anywhere.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the inclusive upper bound
    /// of the first bucket whose cumulative count reaches `ceil(q * n)`.
    /// Exact for the bucket boundary, an upper bound within it.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Non-empty `(bucket_upper_bound, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper(idx), c))
            })
            .collect()
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count())),
            ("sum".to_string(), Value::U64(self.sum())),
            ("max".to_string(), Value::U64(self.max())),
            ("p50".to_string(), Value::U64(self.quantile(0.50))),
            ("p95".to_string(), Value::U64(self.quantile(0.95))),
            ("p99".to_string(), Value::U64(self.quantile(0.99))),
            (
                "buckets".to_string(),
                Value::Seq(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(ub, c)| Value::Seq(vec![Value::U64(ub), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A plain (non-atomic) histogram shard for one worker or one segment.
///
/// Hot loops observe here for free and [`LocalHistogram::merge_into`] the
/// shared [`Histogram`] once at the end; bucket addition commutes, so the
/// merged snapshot is identical whatever the shard boundaries were.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// An empty shard.
    #[must_use]
    pub fn new() -> Self {
        LocalHistogram::default()
    }

    /// Records one observation (no atomics).
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations in this shard.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds this shard into `target` and resets the shard.
    pub fn merge_into(&mut self, target: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (idx, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                target.buckets[idx].fetch_add(*c, Ordering::Relaxed);
            }
        }
        target.count.fetch_add(self.count, Ordering::Relaxed);
        target.sum.fetch_add(self.sum, Ordering::Relaxed);
        target.max.fetch_max(self.max, Ordering::Relaxed);
        *self = LocalHistogram::default();
    }
}

/// One worker's utilization lane: time spent working units, waiting for
/// the scheduler, and merging; plus units claimed and cross-segment
/// steals. All fields are scheduling-dependent — the deterministic
/// snapshot keeps only their across-lane sums where those are invariant
/// (total units equals the number of units submitted).
#[derive(Debug, Default)]
pub struct WorkerLane {
    /// Nanoseconds spent executing units.
    pub busy_ns: AtomicU64,
    /// Nanoseconds between finishing one unit and claiming the next.
    pub idle_ns: AtomicU64,
    /// Nanoseconds spent storing / merging results.
    pub merge_ns: AtomicU64,
    /// Units this worker claimed.
    pub units: AtomicU64,
    /// Units claimed beyond an even `len / workers` share — the dynamic
    /// scheduler's work "stolen" from slower workers.
    pub steals: AtomicU64,
}

impl WorkerLane {
    fn to_value(&self, index: usize) -> Value {
        Value::Map(vec![
            ("worker".to_string(), Value::U64(index as u64)),
            (
                "busy_ns".to_string(),
                Value::U64(self.busy_ns.load(Ordering::Relaxed)),
            ),
            (
                "idle_ns".to_string(),
                Value::U64(self.idle_ns.load(Ordering::Relaxed)),
            ),
            (
                "merge_ns".to_string(),
                Value::U64(self.merge_ns.load(Ordering::Relaxed)),
            ),
            (
                "units".to_string(),
                Value::U64(self.units.load(Ordering::Relaxed)),
            ),
            (
                "steals".to_string(),
                Value::U64(self.steals.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// A point-in-time copy of one worker lane, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLaneSnapshot {
    /// Worker index (stable across the run; not an OS thread id).
    pub worker: usize,
    /// Nanoseconds spent executing units.
    pub busy_ns: u64,
    /// Nanoseconds waiting between units.
    pub idle_ns: u64,
    /// Nanoseconds storing/merging results.
    pub merge_ns: u64,
    /// Units claimed.
    pub units: u64,
    /// Units claimed beyond an even share.
    pub steals: u64,
}

/// A thread-safe registry of whole-run metrics.
///
/// Cheap to clone through an `Arc`; registration locks a map once per
/// distinct name, updates are lock-free. Attach one to a
/// [`Probe`](crate::Probe) with `Probe::with_metrics` and every
/// instrumented layer the probe reaches records into it.
#[derive(Debug, Default)]
pub struct MetricsHub {
    counters: Mutex<Vec<(String, MetricCounter)>>,
    watermarks: Mutex<Vec<(String, Watermark)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
    lanes: Mutex<Vec<Arc<WorkerLane>>>,
}

fn find_or_insert<T: Clone>(
    map: &Mutex<Vec<(String, T)>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> T {
    let mut map = map.lock().unwrap();
    if let Some((_, v)) = map.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = make();
    map.push((name.to_string(), v.clone()));
    v
}

impl MetricsHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// The counter named `name`, registered on first use.
    ///
    /// Names are dotted paths (`pool.units`, `exec.messages`); the `_ns`
    /// suffix marks wall-clock metrics excluded from the deterministic
    /// snapshot.
    #[must_use]
    pub fn counter(&self, name: &str) -> MetricCounter {
        find_or_insert(&self.counters, name, MetricCounter::default)
    }

    /// The high-watermark gauge named `name`, registered on first use.
    #[must_use]
    pub fn watermark(&self, name: &str) -> Watermark {
        find_or_insert(&self.watermarks, name, Watermark::default)
    }

    /// The histogram named `name`, registered on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        find_or_insert(&self.histograms, name, || Arc::new(Histogram::default()))
    }

    /// The utilization lane for worker `index`, growing the table as
    /// needed. Indices are logical worker slots (0-based), stable for a
    /// given thread count — not OS thread ids.
    #[must_use]
    pub fn worker_lane(&self, index: usize) -> Arc<WorkerLane> {
        let mut lanes = self.lanes.lock().unwrap();
        while lanes.len() <= index {
            lanes.push(Arc::new(WorkerLane::default()));
        }
        lanes[index].clone()
    }

    /// Point-in-time copies of every worker lane, by worker index.
    #[must_use]
    pub fn worker_lanes(&self) -> Vec<WorkerLaneSnapshot> {
        self.lanes
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(worker, l)| WorkerLaneSnapshot {
                worker,
                busy_ns: l.busy_ns.load(Ordering::Relaxed),
                idle_ns: l.idle_ns.load(Ordering::Relaxed),
                merge_ns: l.merge_ns.load(Ordering::Relaxed),
                units: l.units.load(Ordering::Relaxed),
                steals: l.steals.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// `(name, value)` for every counter, sorted by name.
    #[must_use]
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        v.sort();
        v
    }

    /// The full snapshot: schema version, counters, watermarks,
    /// histograms (with quantiles), and the worker lane table. Keys are
    /// sorted, so two hubs holding the same values serialize identically.
    #[must_use]
    pub fn snapshot_value(&self) -> Value {
        self.snapshot_inner(false)
    }

    /// The deterministic subset of the snapshot: drops every metric whose
    /// name ends in `_ns` (wall clock) or `_sched` (derived from the
    /// dynamic schedule, e.g. per-epoch steal counts) and the
    /// scheduling-dependent per-lane table, keeping the lane-sum
    /// `worker_units_total`, which equals the number of units submitted
    /// to the pool. For a seeded run this value is bit-identical at
    /// every thread count.
    #[must_use]
    pub fn deterministic_snapshot(&self) -> Value {
        self.snapshot_inner(true)
    }

    fn snapshot_inner(&self, deterministic_only: bool) -> Value {
        let keep = |name: &str| {
            !deterministic_only || !(name.ends_with("_ns") || name.ends_with("_sched"))
        };
        let mut counters: Vec<(String, Value)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .filter(|(n, _)| keep(n))
            .map(|(n, c)| (n.clone(), Value::U64(c.get())))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut watermarks: Vec<(String, Value)> = self
            .watermarks
            .lock()
            .unwrap()
            .iter()
            .filter(|(n, _)| keep(n))
            .map(|(n, w)| (n.clone(), Value::U64(w.get())))
            .collect();
        watermarks.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, Value)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .filter(|(n, _)| keep(n))
            .map(|(n, h)| (n.clone(), h.to_value()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let lanes = self.lanes.lock().unwrap();
        let units_total: u64 = lanes.iter().map(|l| l.units.load(Ordering::Relaxed)).sum();
        let mut fields = vec![
            (
                "schema_version".to_string(),
                Value::U64(METRICS_SCHEMA_VERSION),
            ),
            ("counters".to_string(), Value::Map(counters)),
            ("watermarks".to_string(), Value::Map(watermarks)),
            ("histograms".to_string(), Value::Map(histograms)),
            ("worker_units_total".to_string(), Value::U64(units_total)),
        ];
        if !deterministic_only {
            fields.push((
                "workers".to_string(),
                Value::Seq(
                    lanes
                        .iter()
                        .enumerate()
                        .map(|(i, l)| l.to_value(i))
                        .collect(),
                ),
            ));
        }
        Value::Map(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.max(), 1000);
        // p50 rank = 3 → value 3 lands in bucket (2,3]; upper bound 3.
        assert_eq!(h.quantile(0.50), 3);
        // p99 / p100 land in the last occupied bucket, capped at max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn local_shards_merge_to_identical_snapshot() {
        let direct = Histogram::default();
        let sharded = Histogram::default();
        let values: Vec<u64> = (0..1000).map(|i| (i * 7919) % 4096).collect();
        for v in &values {
            direct.observe(*v);
        }
        // Two shards, arbitrary split.
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        for (i, v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
        }
        b.merge_into(&sharded);
        a.merge_into(&sharded);
        assert_eq!(
            serde::json::to_string(&direct.to_value()),
            serde::json::to_string(&sharded.to_value())
        );
        assert_eq!(a.count(), 0, "merge resets the shard");
    }

    #[test]
    fn hub_registers_once_and_snapshots_sorted() {
        let hub = MetricsHub::new();
        hub.counter("b.second").add(2);
        hub.counter("a.first").add(1);
        hub.counter("b.second").add(3);
        hub.watermark("peak").record(10);
        hub.watermark("peak").record(7);
        assert_eq!(
            hub.counter_values(),
            vec![("a.first".to_string(), 1), ("b.second".to_string(), 5)]
        );
        assert_eq!(hub.watermark("peak").get(), 10);
        let text = serde::json::to_string(&hub.snapshot_value());
        assert!(text.contains("\"schema_version\":1"));
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        assert!(a < b, "snapshot keys must be sorted");
    }

    #[test]
    fn deterministic_snapshot_drops_timing_and_lanes() {
        let hub = MetricsHub::new();
        hub.counter("pool.units").add(4);
        hub.counter("pool.spawn_ns").add(12345);
        hub.histogram("exec.round_ns").observe(99);
        hub.histogram("msg.inbox_bytes").observe(64);
        hub.histogram("pool.steals_per_epoch_sched").observe(7);
        let lane = hub.worker_lane(1);
        lane.busy_ns.fetch_add(500, Ordering::Relaxed);
        lane.units.fetch_add(4, Ordering::Relaxed);
        let det = serde::json::to_string(&hub.deterministic_snapshot());
        assert!(det.contains("pool.units"));
        assert!(det.contains("msg.inbox_bytes"));
        assert!(!det.contains("spawn_ns"));
        assert!(!det.contains("round_ns"));
        assert!(!det.contains("_sched"));
        assert!(!det.contains("\"workers\""));
        assert!(det.contains("\"worker_units_total\":4"));
        let full = serde::json::to_string(&hub.snapshot_value());
        assert!(full.contains("spawn_ns"));
        assert!(full.contains("\"workers\""));
    }

    #[test]
    fn lane_table_grows_and_snapshots() {
        let hub = MetricsHub::new();
        hub.worker_lane(2).units.fetch_add(7, Ordering::Relaxed);
        let lanes = hub.worker_lanes();
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes[2].units, 7);
        assert_eq!(lanes[2].worker, 2);
        assert_eq!(lanes[0].units, 0);
    }
}
