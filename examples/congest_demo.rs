//! CONGEST demo: the symmetry-breaking toolbox under metered bandwidth.
//!
//! The LOCAL model allows unbounded messages; the CONGEST model caps each
//! per-edge message at O(log n) bits. This demo runs the per-port
//! implementations through the metering executor and prints rounds and
//! message widths — the regime of the paper's bandwidth-restricted
//! companions ([MU21], [HM24]).
//!
//! ```text
//! cargo run --release --example congest_demo
//! ```

use delta_coloring::graphs::generators;
use delta_coloring::subroutines::{congest_coloring, congest_mis, mis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>7} {:>14} {:>9} {:>11} {:>9} {:>15} {:>9}",
        "n", "Δ+1 rounds", "bits", "MIS rounds", "bits", "match rounds", "bits"
    );
    for n in [256usize, 1024, 4096] {
        let g = generators::random_regular(n, 8, 2026);
        let col = congest_coloring::congest_delta_plus_one(&g, 1)?;
        col.coloring.check_complete(&g, 9)?;
        let m = congest_mis::congest_mis(&g, 2)?;
        assert!(mis::is_mis(&g, &m.value));
        let mat = congest_mis::congest_matching(&g, 3)?;
        println!(
            "{n:>7} {:>14} {:>9} {:>11} {:>9} {:>15} {:>9}",
            col.rounds,
            col.max_message_bits,
            m.rounds,
            m.max_message_bits,
            mat.rounds,
            mat.max_message_bits
        );
    }
    println!(
        "\nMessage widths stay at O(log Δ) / O(log n) / 2 bits while rounds grow \
         logarithmically — the toolbox the Δ-coloring pipeline builds on is \
         bandwidth-friendly."
    );
    Ok(())
}
