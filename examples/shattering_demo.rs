//! Shattering demo: how the randomized pipeline (Theorem 2) breaks a dense
//! graph into small leftover components.
//!
//! Sweeps the T-node placement probability and prints how the leftover
//! component structure reacts — the ablation behind experiment E8.
//!
//! ```text
//! cargo run --release --example shattering_demo
//! ```

use delta_coloring::coloring::{color_randomized, RandConfig};
use delta_coloring::graphs::coloring::verify_delta_coloring;
use delta_coloring::graphs::generators::{
    hard_cliques_with_blueprint, BlueprintKind, HardCliqueParams,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let delta = 16;
    // A circulant blueprint keeps the clique graph locally structured
    // (linear diameter), so the shattering geometry is visible.
    let inst = hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques: 320,
            delta,
            external_per_vertex: 1,
            seed: 11,
        },
        BlueprintKind::Circulant,
    )?;
    println!(
        "instance: {} vertices in {} hard cliques (Δ = {delta})\n",
        inst.graph.n(),
        inst.cliques.len()
    );
    println!(
        "{:>5} {:>9} {:>8} {:>9} {:>11} {:>13} {:>7}",
        "p", "proposed", "placed", "deferred", "components", "max component", "rounds"
    );
    for prob in [0.02, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let mut config = RandConfig::for_delta(delta, 77);
        config.placement_prob = prob;
        let report = color_randomized(&inst.graph, &config)?;
        verify_delta_coloring(&inst.graph, &report.coloring)?;
        let s = &report.shatter;
        println!(
            "{prob:>5.2} {:>9} {:>8} {:>9} {:>11} {:>13} {:>7}",
            s.proposed,
            s.t_nodes,
            s.deferred,
            s.components,
            s.max_component,
            report.rounds()
        );
    }
    println!(
        "\nMore T-nodes defer more of the graph up front and leave smaller components \
         for the deterministic post-shattering solve — the trade the paper's analysis \
         balances to reach O(Δ + log log n) rounds."
    );
    Ok(())
}
