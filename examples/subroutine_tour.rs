//! A tour of the distributed substrates the pipeline composes: the
//! almost-clique decomposition, maximal matching, hyperedge grabbing, and
//! degree splitting — each run standalone with its LOCAL round count.
//!
//! ```text
//! cargo run --release --example subroutine_tour
//! ```

use delta_coloring::decomposition::{compute_acd, verify_acd, AcdParams};
use delta_coloring::grabbing::generators::random_hypergraph;
use delta_coloring::grabbing::{heg_augmenting, heg_token_walk, sinkless_orientation, verify_heg};
use delta_coloring::graphs::generators;
use delta_coloring::subroutines::{matching, mis, split};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Almost-clique decomposition (Lemma 2). ---
    let inst = generators::hard_cliques(&generators::HardCliqueParams {
        cliques: 68,
        delta: 16,
        external_per_vertex: 1,
        seed: 5,
    })?;
    let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
    verify_acd(&inst.graph, &acd).map_err(|e| format!("ACD invalid: {e}"))?;
    println!(
        "ACD: {} almost-cliques, {} sparse vertices => graph is {} ({} rounds)",
        acd.cliques.len(),
        acd.sparse.len(),
        if acd.is_dense() { "DENSE" } else { "not dense" },
        acd.rounds
    );

    // --- Maximal matching (Phase 1's first step). ---
    let g = generators::random_regular(4096, 8, 1);
    let det = matching::maximal_matching_det_direct(&g)?;
    let rnd = matching::maximal_matching_rand(&g, 2)?;
    println!(
        "maximal matching on 8-regular n=4096: det {} edges / {} rounds, rand {} edges / {} rounds",
        det.value.edges.len(),
        det.rounds,
        rnd.value.edges.len(),
        rnd.rounds
    );

    // --- MIS (drives ruling sets and schedules). ---
    let m = mis::mis_deterministic(&g, None)?;
    println!(
        "deterministic MIS: {} members / {} rounds",
        m.value.iter().filter(|&&b| b).count(),
        m.rounds
    );

    // --- Hyperedge grabbing (Lemma 5). ---
    let h = random_hypergraph(8192, 8, 4, 3)?;
    let aug = heg_augmenting(&h).map_err(|e| format!("HEG: {e}"))?;
    assert!(verify_heg(&h, &aug.value));
    let tok = heg_token_walk(&h, 9).map_err(|e| format!("HEG: {e}"))?;
    assert!(verify_heg(&h, &tok.value));
    println!(
        "hyperedge grabbing (n=8192, δ/r=2): augmenting {} rounds, token walk {} rounds",
        aug.rounds, tok.rounds
    );

    // --- Sinkless orientation: the rank-2 special case (§1.1). ---
    let so = sinkless_orientation(&g, None).map_err(|e| format!("sinkless: {e}"))?;
    let sinks = so
        .value
        .out_degrees(g.n())
        .iter()
        .filter(|&&d| d == 0)
        .count();
    println!(
        "sinkless orientation: {} sinks (must be 0), {} rounds",
        sinks, so.rounds
    );

    // --- Degree splitting (Lemma 21). ---
    let s = split::degree_split(&g, 8)?;
    let disc = s.value.discrepancies(&g);
    println!(
        "degree splitting: max |#red - #blue| per vertex = {} ({} rounds)",
        disc.iter().max().copied().unwrap_or(0),
        s.rounds
    );
    Ok(())
}
