//! Frequency assignment: Δ-coloring as radio channel allocation.
//!
//! Base stations packed into dense urban cells interfere with every other
//! station in their cell and with one station of an adjacent cell (a
//! directional backhaul link). The regulator licensed exactly Δ channels —
//! one *fewer* than the classic greedy guarantee of Δ+1. Brooks' theorem
//! says Δ channels suffice; this example assigns them with the paper's
//! distributed algorithm, so every station decides its channel after a
//! logarithmic number of message exchanges with its neighbors.
//!
//! ```text
//! cargo run --release --example frequency_assignment
//! ```

use delta_coloring::coloring::{color_deterministic, Config};
use delta_coloring::graphs::coloring::verify_delta_coloring;
use delta_coloring::graphs::generators::{hard_cliques, HardCliqueParams};
use delta_coloring::graphs::{Color, NodeId};
use delta_coloring::reference::random_trial_stuck;

const CHANNELS: usize = 16; // Δ: licensed spectrum slots
const CELLS: usize = 34;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let city = hard_cliques(&HardCliqueParams {
        cliques: CELLS,
        delta: CHANNELS,
        external_per_vertex: 1,
        seed: 2026,
    })?;
    println!(
        "{} stations in {} cells; interference degree Δ = {CHANNELS}, {CHANNELS} channels licensed",
        city.graph.n(),
        CELLS
    );

    // First, why not greedy? Assign channels station by station.
    let greedy = random_trial_stuck(&city.graph, 1, u64::MAX);
    println!(
        "greedy assignment: {} stations served, {} stations BLOCKED (no channel left)",
        greedy.colored, greedy.stuck
    );

    // The paper's algorithm: every station gets a channel.
    let report = color_deterministic(&city.graph, &Config::for_delta(CHANNELS))?;
    verify_delta_coloring(&city.graph, &report.coloring)?;
    println!(
        "slack-triad assignment: all {} stations served in {} message rounds",
        city.graph.n(),
        report.rounds()
    );

    // Channel usage histogram.
    let mut usage = [0usize; CHANNELS];
    for v in city.graph.vertices() {
        usage[report.coloring.get(v).expect("complete").index()] += 1;
    }
    println!("\nchannel usage:");
    for (ch, count) in usage.iter().enumerate() {
        println!("  channel {ch:>2}: {}", "#".repeat(count / 4).as_str());
    }

    // Spot-check one cell: all its stations hold distinct channels.
    let cell0: Vec<(NodeId, Color)> = city.cliques[0]
        .iter()
        .map(|&v| (v, report.coloring.get(v).expect("complete")))
        .collect();
    println!("\ncell 0 assignment: {cell0:?}");
    Ok(())
}
