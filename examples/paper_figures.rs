//! Regenerates the paper's structural figures (Figures 2-4) as Graphviz
//! DOT files from a live pipeline run.
//!
//! ```text
//! cargo run --release --example paper_figures
//! dot -Tsvg figure2_triads.dot -o figure2.svg   # if graphviz is installed
//! ```

use delta_coloring::coloring::render;
use delta_coloring::coloring::{
    balanced_matching, classify_cliques, detect_loopholes, form_slack_triads, sparsify_matching,
    Config, HegAlgo, MatchingAlgo,
};
use delta_coloring::decomposition::{compute_acd, AcdParams};
use delta_coloring::graphs::generators::{hard_cliques, HardCliqueParams};
use delta_coloring::local::RoundLedger;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small instance so the figures stay legible.
    let inst = hard_cliques(&HardCliqueParams {
        cliques: 26,
        delta: 12,
        external_per_vertex: 1,
        seed: 4,
    })?;
    let config = Config::for_delta(inst.delta);
    let acd = compute_acd(&inst.graph, &AcdParams::for_delta(inst.delta));
    let loopholes = detect_loopholes(&inst.graph, &acd.clique_of);
    let cls = classify_cliques(&inst.graph, &acd, &loopholes)?;
    let mut ledger = RoundLedger::new();
    let f2 = balanced_matching(
        &inst.graph,
        &acd,
        &cls,
        config.subcliques,
        MatchingAlgo::DetDirect,
        HegAlgo::Augmenting,
        false,
        &mut ledger,
    )?;
    let f3 = sparsify_matching(
        &inst.graph,
        &acd,
        &cls,
        &f2,
        config.acd.eps,
        config.split_segment,
        &mut ledger,
    )?;
    let triads = form_slack_triads(&inst.graph, &acd, &f3, &mut ledger)?;

    let figures = [
        (
            "figure2_triads.dot",
            render::render_triads(&inst.graph, &acd, &triads),
        ),
        (
            "figure3_pair_graph.dot",
            render::render_pair_graph(&inst.graph, &triads),
        ),
        (
            "figure4_matching.dot",
            render::render_matching(&inst.graph, &acd, &f2),
        ),
    ];
    for (name, dot) in figures {
        std::fs::write(name, &dot)?;
        println!("wrote {name} ({} bytes)", dot.len());
    }
    println!(
        "\n{} slack triads over {} hard cliques; render with `dot -Tsvg <file> -o out.svg`",
        triads.triads.len(),
        cls.hard_ids.len()
    );
    Ok(())
}
