//! Quickstart: generate a dense hard instance, run both Δ-coloring
//! pipelines, inspect the round ledgers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use delta_coloring::coloring::{color_deterministic, color_randomized, Config, RandConfig};
use delta_coloring::graphs::coloring::verify_delta_coloring;
use delta_coloring::graphs::generators::{hard_cliques, HardCliqueParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 68 cliques of 16 vertices each; every vertex has 15 clique neighbors
    // plus one external edge, so Δ = 16 and no clique has a loophole: the
    // hardest regime for Δ-coloring.
    let inst = hard_cliques(&HardCliqueParams {
        cliques: 68,
        delta: 16,
        external_per_vertex: 1,
        seed: 42,
    })?;
    println!(
        "instance: {} vertices, {} edges, Δ = {}",
        inst.graph.n(),
        inst.graph.m(),
        inst.delta
    );

    // Theorem 1: the deterministic pipeline.
    let det = color_deterministic(&inst.graph, &Config::for_delta(inst.delta))?;
    verify_delta_coloring(&inst.graph, &det.coloring)?;
    println!(
        "\n== deterministic (Theorem 1): {} LOCAL rounds ==",
        det.rounds()
    );
    println!("{}", det.ledger);
    println!(
        "hard cliques: {}, slack pairs: {}, G_V max degree: {} (bound Δ-2 = {})",
        det.stats.hard,
        det.stats.phase4.pairs,
        det.stats.phase4.gv_max_degree,
        inst.delta - 2
    );

    // Theorem 2: the randomized shattering pipeline.
    let rand = color_randomized(&inst.graph, &RandConfig::for_delta(inst.delta, 7))?;
    verify_delta_coloring(&inst.graph, &rand.coloring)?;
    println!(
        "\n== randomized (Theorem 2): {} LOCAL rounds ==",
        rand.rounds()
    );
    println!(
        "T-nodes placed: {}, deferred: {}, leftover components: {} (max size {})",
        rand.shatter.t_nodes,
        rand.shatter.deferred,
        rand.shatter.components,
        rand.shatter.max_component
    );
    Ok(())
}
